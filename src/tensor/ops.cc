#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "support/parallel.h"
#include "tensor/alloc.h"

namespace slapo {
namespace ops {

namespace {

/** Elementwise chunk size: large enough to amortize dispatch, fixed so
 * chunk boundaries (and thus results) never depend on the thread count. */
constexpr int64_t kElemGrain = 1 << 14;

/** Fixed per-chunk row count for row-parallel kernels (softmax, norm). */
int64_t
rowGrain(int64_t row_width)
{
    return std::max<int64_t>(1, (1 << 14) / std::max<int64_t>(1, row_width));
}

/** Strides (in elements) of a row-major contiguous shape. */
std::vector<int64_t>
stridesOf(const Shape& shape)
{
    std::vector<int64_t> strides(shape.size(), 1);
    for (int64_t i = static_cast<int64_t>(shape.size()) - 2; i >= 0; --i) {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    return strides;
}

/**
 * Same-shape elementwise binary core: po[i] = f(pa[i], pb[i]). `po` may
 * alias `pa` (the planner's in-place path): element i is read before it
 * is written and never revisited, so aliasing is bit-identical to a
 * fresh output.
 */
template <typename F>
void
binarySameShapeInto(const float* pa, const float* pb, float* po, int64_t n,
                    F&& f)
{
    support::parallelFor(0, n, kElemGrain, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) po[i] = f(pa[i], pb[i]);
    });
}

/** Apply an elementwise binary functor with numpy broadcasting. Every
 * output element is written exactly once, so the output is allocated
 * uninitialized. */
template <typename F>
Tensor
broadcastBinary(const Tensor& a, const Tensor& b, F&& f)
{
    const Shape out_shape = broadcastShapes(a.shape(), b.shape());
    Tensor out = Tensor::empty(out_shape);
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    const int64_t n = out.numel();

    // Fast path: identical shapes — one contiguous pass, no index math.
    if (a.shape() == b.shape()) {
        binarySameShapeInto(pa, pb, po, n, f);
        return out;
    }
    // Fast path: one operand is a single value (scale/shift tensors).
    if (b.numel() == 1) {
        const float s = pb[0];
        support::parallelFor(0, n, kElemGrain, [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) po[i] = f(pa[i], s);
        });
        return out;
    }
    if (a.numel() == 1) {
        const float s = pa[0];
        support::parallelFor(0, n, kElemGrain, [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) po[i] = f(s, pb[i]);
        });
        return out;
    }

    // Genuine broadcast: precompute per-dim effective strides (0 on
    // broadcast dims) and walk an odometer index per chunk instead of
    // doing a div/mod per element.
    const int64_t rank = static_cast<int64_t>(out_shape.size());
    auto aligned = [&](const Shape& s) {
        Shape r(rank, 1);
        std::copy(s.begin(), s.end(), r.begin() + (rank - s.size()));
        return r;
    };
    const Shape sa = aligned(a.shape());
    const Shape sb = aligned(b.shape());
    const auto stra = stridesOf(sa);
    const auto strb = stridesOf(sb);
    const auto stro = stridesOf(out_shape);
    std::vector<int64_t> ea(rank), eb(rank);
    for (int64_t d = 0; d < rank; ++d) {
        ea[d] = sa[d] == 1 ? 0 : stra[d];
        eb[d] = sb[d] == 1 ? 0 : strb[d];
    }

    support::parallelFor(0, n, kElemGrain, [&](int64_t lo, int64_t hi) {
        std::vector<int64_t> idx(rank);
        int64_t rem = lo, ia = 0, ib = 0;
        for (int64_t d = 0; d < rank; ++d) {
            idx[d] = rem / stro[d];
            rem %= stro[d];
            ia += idx[d] * ea[d];
            ib += idx[d] * eb[d];
        }
        for (int64_t flat = lo; flat < hi; ++flat) {
            po[flat] = f(pa[ia], pb[ib]);
            for (int64_t d = rank - 1; d >= 0; --d) {
                if (++idx[d] < out_shape[d]) {
                    ia += ea[d];
                    ib += eb[d];
                    break;
                }
                idx[d] = 0;
                ia -= (out_shape[d] - 1) * ea[d];
                ib -= (out_shape[d] - 1) * eb[d];
            }
        }
    });
    return out;
}

/** Elementwise unary core: po[i] = f(pa[i]); po may alias pa. */
template <typename F>
void
unaryInto(const float* pa, float* po, int64_t n, F&& f)
{
    support::parallelFor(0, n, kElemGrain, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            po[i] = f(pa[i]);
        }
    });
}

template <typename F>
Tensor
unary(const Tensor& a, F&& f)
{
    Tensor out = Tensor::empty(a.shape());
    unaryInto(a.data(), out.data(), a.numel(), f);
    return out;
}

constexpr float kGeluC = 0.7978845608028654f; // sqrt(2/pi)

// Scalar functions shared by the out-of-place kernels and their
// in-place twins, so both paths run identical per-element arithmetic.
inline float
geluFn(float x)
{
    return 0.5f * x * (1.0f + std::tanh(kGeluC * (x + 0.044715f * x * x * x)));
}

inline float
reluFn(float x)
{
    return x > 0.0f ? x : 0.0f;
}

inline float
tanhFn(float x)
{
    return std::tanh(x);
}

} // namespace

Tensor
add(const Tensor& a, const Tensor& b)
{
    return broadcastBinary(a, b, [](float x, float y) { return x + y; });
}

Tensor
sub(const Tensor& a, const Tensor& b)
{
    return broadcastBinary(a, b, [](float x, float y) { return x - y; });
}

Tensor
mul(const Tensor& a, const Tensor& b)
{
    return broadcastBinary(a, b, [](float x, float y) { return x * y; });
}

Tensor
div(const Tensor& a, const Tensor& b)
{
    return broadcastBinary(a, b, [](float x, float y) { return x / y; });
}

// In-place binary twins: same-shape only (the planner never marks a
// broadcasting node in-place); `a` is both input 0 and the output.

void
addInPlace(Tensor& a, const Tensor& b)
{
    SLAPO_CHECK(a.shape() == b.shape(), "addInPlace: shape mismatch");
    binarySameShapeInto(a.data(), b.data(), a.data(), a.numel(),
                        [](float x, float y) { return x + y; });
}

void
subInPlace(Tensor& a, const Tensor& b)
{
    SLAPO_CHECK(a.shape() == b.shape(), "subInPlace: shape mismatch");
    binarySameShapeInto(a.data(), b.data(), a.data(), a.numel(),
                        [](float x, float y) { return x - y; });
}

void
mulInPlace(Tensor& a, const Tensor& b)
{
    SLAPO_CHECK(a.shape() == b.shape(), "mulInPlace: shape mismatch");
    binarySameShapeInto(a.data(), b.data(), a.data(), a.numel(),
                        [](float x, float y) { return x * y; });
}

void
divInPlace(Tensor& a, const Tensor& b)
{
    SLAPO_CHECK(a.shape() == b.shape(), "divInPlace: shape mismatch");
    binarySameShapeInto(a.data(), b.data(), a.data(), a.numel(),
                        [](float x, float y) { return x / y; });
}

Tensor
scale(const Tensor& a, float factor)
{
    return unary(a, [factor](float x) { return x * factor; });
}

Tensor
addScalar(const Tensor& a, float value)
{
    return unary(a, [value](float x) { return x + value; });
}

void
scaleInPlace(Tensor& a, float factor)
{
    unaryInto(a.data(), a.data(), a.numel(),
              [factor](float x) { return x * factor; });
}

void
addScalarInPlace(Tensor& a, float value)
{
    unaryInto(a.data(), a.data(), a.numel(),
              [value](float x) { return x + value; });
}

Tensor
gelu(const Tensor& a)
{
    return unary(a, geluFn);
}

Tensor
geluBackward(const Tensor& grad, const Tensor& a)
{
    SLAPO_CHECK(grad.shape() == a.shape(), "geluBackward: shape mismatch");
    Tensor out = Tensor::empty(a.shape());
    const float* pg = grad.data();
    const float* pa = a.data();
    float* po = out.data();
    support::parallelFor(0, a.numel(), kElemGrain,
                         [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            const float x = pa[i];
            const float inner = kGeluC * (x + 0.044715f * x * x * x);
            const float t = std::tanh(inner);
            const float dinner = kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
            const float d =
                0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
            po[i] = pg[i] * d;
        }
    });
    return out;
}

Tensor
relu(const Tensor& a)
{
    return unary(a, reluFn);
}

void
geluInPlace(Tensor& a)
{
    unaryInto(a.data(), a.data(), a.numel(), geluFn);
}

void
reluInPlace(Tensor& a)
{
    unaryInto(a.data(), a.data(), a.numel(), reluFn);
}

void
tanhInPlace(Tensor& a)
{
    unaryInto(a.data(), a.data(), a.numel(), tanhFn);
}

Tensor
reluBackward(const Tensor& grad, const Tensor& a)
{
    SLAPO_CHECK(grad.shape() == a.shape(), "reluBackward: shape mismatch");
    return broadcastBinary(grad, a,
                           [](float g, float x) { return x > 0.0f ? g : 0.0f; });
}

Tensor
tanhOp(const Tensor& a)
{
    return unary(a, tanhFn);
}

Tensor
tanhBackward(const Tensor& grad, const Tensor& y)
{
    return broadcastBinary(grad, y,
                           [](float g, float t) { return g * (1.0f - t * t); });
}

Tensor
clampScalar(const Tensor& a, float lo, float hi)
{
    return unary(a, [lo, hi](float x) { return std::min(std::max(x, lo), hi); });
}

Tensor
rangeMask(const Tensor& a, float lo, float hi)
{
    return unary(a, [lo, hi](float x) { return x >= lo && x < hi ? 1.0f : 0.0f; });
}

void
clampScalarInPlace(Tensor& a, float lo, float hi)
{
    unaryInto(a.data(), a.data(), a.numel(),
              [lo, hi](float x) { return std::min(std::max(x, lo), hi); });
}

void
rangeMaskInPlace(Tensor& a, float lo, float hi)
{
    unaryInto(a.data(), a.data(), a.numel(),
              [lo, hi](float x) { return x >= lo && x < hi ? 1.0f : 0.0f; });
}

namespace {

/** Additive causal mask applied to a buffer in place (shared by the
 * copy-then-mask kernel and the planner's in-place twin). */
void
causalMaskApply(float* po, int64_t batch, int64_t sq, int64_t sk)
{
    for (int64_t b = 0; b < batch; ++b) {
        for (int64_t i = 0; i < sq; ++i) {
            for (int64_t j = i + 1; j < sk; ++j) {
                po[(b * sq + i) * sk + j] += -1e9f;
            }
        }
    }
}

} // namespace

Tensor
causalMask(const Tensor& scores)
{
    SLAPO_CHECK(scores.dim() >= 2, "causalMask: needs at least 2-D");
    const int64_t sq = scores.size(-2);
    const int64_t sk = scores.size(-1);
    Tensor out = scores.clone();
    causalMaskApply(out.data(), scores.numel() / (sq * sk), sq, sk);
    return out;
}

void
causalMaskInPlace(Tensor& scores)
{
    SLAPO_CHECK(scores.dim() >= 2, "causalMask: needs at least 2-D");
    const int64_t sq = scores.size(-2);
    const int64_t sk = scores.size(-1);
    causalMaskApply(scores.data(), scores.numel() / (sq * sk), sq, sk);
}

namespace {

/** Clipped-relative-distance bucket index for relPosBias. */
int64_t
relBucket(int64_t i, int64_t j, int64_t buckets)
{
    int64_t rel = j - i;
    rel = std::min(std::max(rel, -(buckets - 1)), buckets - 1);
    return rel + buckets - 1;
}

} // namespace

Tensor
relPosBias(const Tensor& scores, const Tensor& table)
{
    SLAPO_CHECK(scores.dim() == 4 && table.dim() == 2,
                "relPosBias: expects [B,h,Sq,Sk] scores and [h, 2b-1] table");
    const int64_t B = scores.size(0), H = scores.size(1);
    const int64_t Sq = scores.size(2), Sk = scores.size(3);
    SLAPO_CHECK(table.size(0) == H,
                "relPosBias: table heads " << table.size(0) << " != scores "
                                           << H);
    SLAPO_CHECK(table.size(1) % 2 == 1, "relPosBias: table width must be odd");
    const int64_t buckets = (table.size(1) + 1) / 2;

    Tensor out = scores.clone();
    float* po = out.data();
    const float* pt = table.data();
    for (int64_t b = 0; b < B; ++b) {
        for (int64_t h = 0; h < H; ++h) {
            for (int64_t i = 0; i < Sq; ++i) {
                for (int64_t j = 0; j < Sk; ++j) {
                    po[((b * H + h) * Sq + i) * Sk + j] +=
                        pt[h * table.size(1) + relBucket(i, j, buckets)];
                }
            }
        }
    }
    return out;
}

Tensor
relPosBiasTableBackward(const Tensor& grad, const Shape& table_shape)
{
    SLAPO_CHECK(grad.dim() == 4 && table_shape.size() == 2,
                "relPosBiasTableBackward: bad shapes");
    Tensor table_grad = Tensor::zeros(table_shape);
    const int64_t B = grad.size(0), H = grad.size(1);
    const int64_t Sq = grad.size(2), Sk = grad.size(3);
    const int64_t buckets = (table_shape[1] + 1) / 2;
    const float* pg = grad.data();
    float* pt = table_grad.data();
    for (int64_t b = 0; b < B; ++b) {
        for (int64_t h = 0; h < H; ++h) {
            for (int64_t i = 0; i < Sq; ++i) {
                for (int64_t j = 0; j < Sk; ++j) {
                    pt[h * table_shape[1] + relBucket(i, j, buckets)] +=
                        pg[((b * H + h) * Sq + i) * Sk + j];
                }
            }
        }
    }
    return table_grad;
}

Tensor
sumAll(const Tensor& a)
{
    double acc = 0.0;
    const float* pa = a.data();
    for (int64_t i = 0; i < a.numel(); ++i) {
        acc += pa[i];
    }
    return Tensor::fromValues({1}, {static_cast<float>(acc)});
}

Tensor
meanAll(const Tensor& a)
{
    Tensor s = sumAll(a);
    s.scaleInPlace(1.0f / static_cast<float>(a.numel()));
    return s;
}

Tensor
reduceToShape(const Tensor& grad_out, const Shape& shape)
{
    if (grad_out.shape() == shape) {
        return grad_out.clone();
    }
    const int64_t rank = grad_out.dim();
    Shape aligned(rank, 1);
    std::copy(shape.begin(), shape.end(), aligned.begin() + (rank - shape.size()));

    const float* pg = grad_out.data();
    const int64_t n = grad_out.numel();

    // Classify the reduced dims (aligned extent 1 where the gradient
    // extent is > 1). Two contiguous layouts get fast loops over an
    // uninitialized output (first touch assigns, later rows accumulate);
    // anything with interior broadcast dims falls back to the odometer
    // walk, whose scatter destinations repeat and so needs zeros.
    std::vector<bool> reduced(rank);
    int64_t first_kept = rank, last_kept = -1;
    int64_t first_reduced = rank, last_reduced = -1;
    for (int64_t d = 0; d < rank; ++d) {
        reduced[d] = aligned[d] == 1 && grad_out.size(d) != 1;
        if (reduced[d]) {
            first_reduced = std::min(first_reduced, d);
            last_reduced = d;
        } else {
            first_kept = std::min(first_kept, d);
            last_kept = d;
        }
    }

    if (last_reduced >= 0 && last_reduced < first_kept) {
        // Pure leading reduce (e.g. grad [B, S, D] -> bias [D]): every
        // output element sums `outer` contiguous rows. The o-loop order is
        // fixed (row 0 assigns, rows 1.. accumulate — the same ascending
        // summation as before); chunks split the contiguous inner axis,
        // so results are bit-identical at any thread count.
        Tensor out = Tensor::empty(aligned);
        float* po = out.data();
        const int64_t inner = out.numel();
        const int64_t outer = n / inner;
        if (outer == 0) { // zero-extent reduced dim: nothing to sum
            out.fill_(0.0f);
            return out.reshape(shape);
        }
        support::parallelFor(0, inner, kElemGrain,
                             [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
                po[i] = pg[i];
            }
            for (int64_t o = 1; o < outer; ++o) {
                const float* row = pg + o * inner;
                for (int64_t i = lo; i < hi; ++i) {
                    po[i] += row[i];
                }
            }
        });
        return out.reshape(shape);
    }
    if (last_kept >= 0 && last_kept < first_reduced) {
        // Pure trailing reduce (e.g. grad [B, S, D] -> [B, 1, 1]): each
        // output element is one independent contiguous row sum.
        Tensor out = Tensor::empty(aligned);
        float* po = out.data();
        int64_t inner = 1;
        for (int64_t d = first_reduced; d < rank; ++d) {
            inner *= grad_out.size(d);
        }
        const int64_t outer = n / inner;
        support::parallelFor(0, outer, rowGrain(inner),
                             [&](int64_t lo, int64_t hi) {
            for (int64_t o = lo; o < hi; ++o) {
                const float* row = pg + o * inner;
                float acc = 0.0f;
                for (int64_t i = 0; i < inner; ++i) acc += row[i];
                po[o] = acc;
            }
        });
        return out.reshape(shape);
    }

    // General case (interior/mixed broadcast dims): serial odometer walk —
    // a scatter-add whose destination repeats, kept serial for determinism.
    Tensor out = Tensor::zeros(aligned);
    float* po = out.data();
    const auto stro = stridesOf(grad_out.shape());
    const auto stra = stridesOf(aligned);
    std::vector<int64_t> eff(rank);
    for (int64_t d = 0; d < rank; ++d) {
        eff[d] = aligned[d] == 1 ? 0 : stra[d];
    }
    std::vector<int64_t> idx(rank, 0);
    int64_t ia = 0;
    for (int64_t flat = 0; flat < n; ++flat) {
        po[ia] += pg[flat];
        for (int64_t d = rank - 1; d >= 0; --d) {
            if (++idx[d] < grad_out.size(d)) {
                ia += eff[d];
                break;
            }
            idx[d] = 0;
            ia -= (grad_out.size(d) - 1) * eff[d];
        }
    }
    return out.reshape(shape);
}

namespace {

// --- blocked GEMM microkernel --------------------------------------------
//
// The one microkernel behind matmul, linear forward, and both linear
// backward GEMMs. Output is tiled kRowTile x kColTile; the tile lives in
// registers / L1 stack while the k loop streams A columns and B rows
// through it, so every C element is written exactly once and every B row
// is reused kRowTile times per pass. Accumulation is float, k ascending —
// a summation order that depends only on the shapes, never on threading.

constexpr int64_t kRowTile = 4;  // output rows accumulated together (M tile)
constexpr int64_t kColTile = 64; // accumulator width in floats (N tile)

/**
 * C[i0:i1, :] = A[i0:i1, :] @ B (+ bias), all row-major contiguous:
 * A is [m, k], B is [k, n], C is [m, n]. When `bias` is non-null it is a
 * length-n row added to every output row (seeded into the accumulator).
 * Row ranges are the unit of parallelism: disjoint [i0, i1) ranges touch
 * disjoint C rows, so any partitioning of rows is race-free and
 * bit-deterministic.
 */
void
gemmRows(const float* A, const float* B, float* C, int64_t i0, int64_t i1,
         int64_t k, int64_t n, const float* bias)
{
    float acc[kRowTile][kColTile];
    for (int64_t i = i0; i < i1; i += kRowTile) {
        const int64_t rt = std::min(kRowTile, i1 - i);
        for (int64_t j = 0; j < n; j += kColTile) {
            const int64_t jt = std::min(kColTile, n - j);
            for (int64_t r = 0; r < rt; ++r) {
                for (int64_t c = 0; c < jt; ++c) {
                    acc[r][c] = bias ? bias[j + c] : 0.0f;
                }
            }
            if (rt == kRowTile && jt == kColTile) {
                // Full tile: fixed trip counts so the compiler keeps the
                // j loop vectorized and the four A broadcasts in registers.
                for (int64_t kk = 0; kk < k; ++kk) {
                    const float* brow = B + kk * n + j;
                    const float a0 = A[(i + 0) * k + kk];
                    const float a1 = A[(i + 1) * k + kk];
                    const float a2 = A[(i + 2) * k + kk];
                    const float a3 = A[(i + 3) * k + kk];
                    for (int64_t c = 0; c < kColTile; ++c) {
                        const float bv = brow[c];
                        acc[0][c] += a0 * bv;
                        acc[1][c] += a1 * bv;
                        acc[2][c] += a2 * bv;
                        acc[3][c] += a3 * bv;
                    }
                }
            } else {
                for (int64_t kk = 0; kk < k; ++kk) {
                    const float* brow = B + kk * n + j;
                    for (int64_t r = 0; r < rt; ++r) {
                        const float ar = A[(i + r) * k + kk];
                        for (int64_t c = 0; c < jt; ++c) {
                            acc[r][c] += ar * brow[c];
                        }
                    }
                }
            }
            for (int64_t r = 0; r < rt; ++r) {
                float* crow = C + (i + r) * n + j;
                for (int64_t c = 0; c < jt; ++c) {
                    crow[c] = acc[r][c];
                }
            }
        }
    }
}

/** Row-tile grain sized so one chunk is ~2^18 flops (thread-independent). */
int64_t
gemmGrain(int64_t k, int64_t n)
{
    const int64_t tile_flops = 2 * kRowTile * std::max<int64_t>(1, k) *
                               std::max<int64_t>(1, n);
    return std::max<int64_t>(1, (1 << 18) / tile_flops);
}

/**
 * Parallel C = A @ B (+ bias) over row tiles of one contiguous problem.
 */
void
gemmParallel(const float* A, const float* B, float* C, int64_t m, int64_t k,
             int64_t n, const float* bias)
{
    const int64_t row_tiles = (m + kRowTile - 1) / kRowTile;
    support::parallelFor(0, row_tiles, gemmGrain(k, n),
                         [&](int64_t lo, int64_t hi) {
        gemmRows(A, B, C, lo * kRowTile, std::min(m, hi * kRowTile), k, n,
                 bias);
    });
}

/**
 * Blocked transpose pack: dst[c, r] = src[r, c] for src [rows, cols].
 * Used to present W^T (linear forward) and g^T (weight gradient) to the
 * row-major microkernel. 32x32 tiles keep both sides cache-resident.
 */
void
transposePack(const float* src, float* dst, int64_t rows, int64_t cols)
{
    constexpr int64_t kT = 32;
    const int64_t col_tiles = (cols + kT - 1) / kT;
    support::parallelFor(0, col_tiles, 4, [&](int64_t lo, int64_t hi) {
        for (int64_t ct = lo; ct < hi; ++ct) {
            const int64_t c0 = ct * kT;
            const int64_t c1 = std::min(cols, c0 + kT);
            for (int64_t r0 = 0; r0 < rows; r0 += kT) {
                const int64_t r1 = std::min(rows, r0 + kT);
                for (int64_t r = r0; r < r1; ++r) {
                    for (int64_t c = c0; c < c1; ++c) {
                        dst[c * rows + r] = src[r * cols + c];
                    }
                }
            }
        }
    });
}

} // namespace

Tensor
matmul(const Tensor& a, const Tensor& b)
{
    SLAPO_CHECK(a.dim() >= 2 && b.dim() >= 2,
                "matmul: operands must be at least 2-D, got "
                    << shapeToString(a.shape()) << " @ " << shapeToString(b.shape()));
    const int64_t m = a.size(-2);
    const int64_t k = a.size(-1);
    const int64_t k2 = b.size(-2);
    const int64_t n = b.size(-1);
    SLAPO_CHECK(k == k2, "matmul: inner dims mismatch "
                             << shapeToString(a.shape()) << " @ "
                             << shapeToString(b.shape()));

    Shape batch_a(a.shape().begin(), a.shape().end() - 2);
    Shape batch_b(b.shape().begin(), b.shape().end() - 2);
    Shape batch = broadcastShapes(batch_a, batch_b);
    const int64_t n_batch = numelOf(batch);

    Shape out_shape = batch;
    out_shape.push_back(m);
    out_shape.push_back(n);
    // gemmRows writes every C element exactly once: no zero-init needed.
    Tensor out = Tensor::empty(out_shape);

    // Per-batch flat offsets honoring broadcast on batch dims, computed
    // up front so the parallel loop body is pure arithmetic.
    const size_t rank = batch.size();
    auto aligned = [&](const Shape& s) {
        Shape r(rank, 1);
        std::copy(s.begin(), s.end(), r.begin() + (rank - s.size()));
        return r;
    };
    const Shape ba = aligned(batch_a);
    const Shape bb = aligned(batch_b);
    const auto stra = stridesOf(ba);
    const auto strb = stridesOf(bb);
    const auto strc = stridesOf(batch);
    std::vector<int64_t> offs_a(n_batch), offs_b(n_batch);
    for (int64_t bi = 0; bi < n_batch; ++bi) {
        int64_t rem = bi;
        int64_t off_a = 0;
        int64_t off_b = 0;
        for (size_t d = 0; d < rank; ++d) {
            const int64_t idx = rem / strc[d];
            rem %= strc[d];
            if (ba[d] != 1) off_a += idx * stra[d];
            if (bb[d] != 1) off_b += idx * strb[d];
        }
        offs_a[bi] = off_a * m * k;
        offs_b[bi] = off_b * k * n;
    }

    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();

    // Parallelize over batch x row-tiles: every unit owns a disjoint slab
    // of C rows, so the partitioning is race-free and bit-deterministic.
    const int64_t row_tiles = (m + kRowTile - 1) / kRowTile;
    support::parallelFor(0, n_batch * row_tiles, gemmGrain(k, n),
                         [&](int64_t lo, int64_t hi) {
        for (int64_t u = lo; u < hi;) {
            const int64_t bi = u / row_tiles;
            const int64_t t0 = u % row_tiles;
            // Take the longest run of tiles inside this batch entry.
            const int64_t t1 =
                std::min(row_tiles, t0 + (hi - u));
            gemmRows(pa + offs_a[bi], pb + offs_b[bi], po + bi * m * n,
                     t0 * kRowTile, std::min(m, t1 * kRowTile), k, n,
                     nullptr);
            u += t1 - t0;
        }
    });
    return out;
}

Tensor
transposeLast2(const Tensor& a)
{
    SLAPO_CHECK(a.dim() >= 2, "transposeLast2: needs at least 2-D");
    std::vector<int64_t> perm(a.dim());
    for (int64_t i = 0; i < a.dim(); ++i) perm[i] = i;
    std::swap(perm[a.dim() - 1], perm[a.dim() - 2]);
    return permute(a, perm);
}

Tensor
linear(const Tensor& x, const Tensor& weight, const Tensor& bias)
{
    SLAPO_CHECK(weight.dim() == 2, "linear: weight must be 2-D");
    const int64_t in = weight.size(1);
    const int64_t out_f = weight.size(0);
    SLAPO_CHECK(x.size(-1) == in,
                "linear: input features " << x.size(-1) << " != weight in "
                                          << in);
    const int64_t rows = x.numel() / in;
    Tensor x2 = x.reshape({rows, in});

    // x @ W^T via the shared blocked microkernel: pack W^T once (cost
    // out*in, amortized over all rows), then run the row-parallel GEMM
    // with the bias seeded into the accumulator tile. Accumulation is
    // float with blocked summation — the same convention as matmul, so
    // linear(x, W, b) and add(matmul(x, W^T), b) agree within float
    // rounding (see tests/test_parallel.cc).
    Tensor out = Tensor::empty({rows, out_f});
    alloc::Scratch wt(in * out_f);
    transposePack(weight.data(), wt.data(), out_f, in);
    const float* pb = nullptr;
    if (bias.numel() > 0) {
        SLAPO_CHECK(bias.numel() == out_f, "linear: bias size mismatch");
        pb = bias.data();
    }
    gemmParallel(x2.data(), wt.data(), out.data(), rows, in, out_f, pb);

    Shape out_shape = x.shape();
    out_shape.back() = out_f;
    return out.reshape(out_shape);
}

LinearGrads
linearBackward(const Tensor& grad_out, const Tensor& x, const Tensor& weight,
               bool has_bias)
{
    const int64_t in = weight.size(1);
    const int64_t out_f = weight.size(0);
    const int64_t rows = x.numel() / in;
    Tensor g2 = grad_out.reshape({rows, out_f});
    Tensor x2 = x.reshape({rows, in});
    const float* pg = g2.data();

    LinearGrads grads;
    // grad_x [rows, in] = g [rows, out] @ W [out, in]: W is already in
    // row-major microkernel layout, no packing needed.
    grads.grad_x = Tensor::empty({rows, in});
    gemmParallel(pg, weight.data(), grads.grad_x.data(), rows, out_f, in,
                 nullptr);
    grads.grad_x = grads.grad_x.reshape(x.shape());

    // grad_W [out, in] = g^T [out, rows] @ x [rows, in].
    grads.grad_weight = Tensor::empty({out_f, in});
    alloc::Scratch gt(rows * out_f);
    transposePack(pg, gt.data(), rows, out_f);
    gemmParallel(gt.data(), x2.data(), grads.grad_weight.data(), out_f, rows,
                 in, nullptr);

    if (has_bias) {
        // Column sums of g: chunks own disjoint output columns and walk
        // the rows in fixed order — deterministic at any thread count.
        Tensor gb = Tensor::zeros({out_f});
        float* pbias = gb.data();
        support::parallelFor(0, out_f, 1 << 10, [&](int64_t lo, int64_t hi) {
            for (int64_t r = 0; r < rows; ++r) {
                const float* grow = pg + r * out_f;
                for (int64_t o = lo; o < hi; ++o) {
                    pbias[o] += grow[o];
                }
            }
        });
        grads.grad_bias = gb;
    }
    return grads;
}

namespace {

/**
 * Row softmax core; `po` may alias `pa`: the max pass only reads, the
 * exp pass reads row[i] immediately before writing orow[i], and the
 * scale pass touches only the output — so in-place is bit-identical.
 */
void
softmaxInto(const float* pa, float* po, int64_t rows, int64_t d)
{
    support::parallelFor(0, rows, rowGrain(d), [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
            const float* row = pa + r * d;
            float* orow = po + r * d;
            float max_v = row[0];
            for (int64_t i = 1; i < d; ++i) max_v = std::max(max_v, row[i]);
            double sum = 0.0;
            for (int64_t i = 0; i < d; ++i) {
                orow[i] = std::exp(row[i] - max_v);
                sum += orow[i];
            }
            const float inv = static_cast<float>(1.0 / sum);
            for (int64_t i = 0; i < d; ++i) orow[i] *= inv;
        }
    });
}

} // namespace

Tensor
softmax(const Tensor& a)
{
    const int64_t d = a.size(-1);
    Tensor out = Tensor::empty(a.shape());
    softmaxInto(a.data(), out.data(), a.numel() / d, d);
    return out;
}

void
softmaxInPlace(Tensor& a)
{
    const int64_t d = a.size(-1);
    softmaxInto(a.data(), a.data(), a.numel() / d, d);
}

Tensor
softmaxBackward(const Tensor& grad, const Tensor& y)
{
    const int64_t d = y.size(-1);
    const int64_t rows = y.numel() / d;
    Tensor out = Tensor::empty(y.shape());
    const float* pg = grad.data();
    const float* py = y.data();
    float* po = out.data();
    support::parallelFor(0, rows, rowGrain(d), [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
            const float* gr = pg + r * d;
            const float* yr = py + r * d;
            float* orow = po + r * d;
            double dot = 0.0;
            for (int64_t i = 0; i < d; ++i) dot += gr[i] * yr[i];
            for (int64_t i = 0; i < d; ++i) {
                orow[i] = yr[i] * (gr[i] - static_cast<float>(dot));
            }
        }
    });
    return out;
}

Tensor
layerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta, float eps)
{
    const int64_t d = x.size(-1);
    SLAPO_CHECK(gamma.numel() == d && beta.numel() == d,
                "layerNorm: affine param size mismatch");
    const int64_t rows = x.numel() / d;
    Tensor out = Tensor::empty(x.shape());
    const float* px = x.data();
    const float* pg = gamma.data();
    const float* pb = beta.data();
    float* po = out.data();
    support::parallelFor(0, rows, rowGrain(d), [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
            const float* row = px + r * d;
            float* orow = po + r * d;
            double mean = 0.0;
            for (int64_t i = 0; i < d; ++i) mean += row[i];
            mean /= d;
            double var = 0.0;
            for (int64_t i = 0; i < d; ++i) {
                const double c = row[i] - mean;
                var += c * c;
            }
            var /= d;
            const float inv_std =
                static_cast<float>(1.0 / std::sqrt(var + eps));
            for (int64_t i = 0; i < d; ++i) {
                orow[i] =
                    (row[i] - static_cast<float>(mean)) * inv_std * pg[i] +
                    pb[i];
            }
        }
    });
    return out;
}

LayerNormGrads
layerNormBackward(const Tensor& grad_out, const Tensor& x, const Tensor& gamma,
                  float eps)
{
    const int64_t d = x.size(-1);
    const int64_t rows = x.numel() / d;
    LayerNormGrads grads;
    grads.grad_x = Tensor::empty(x.shape()); // every row fully written
    grads.grad_gamma = Tensor::zeros({d});   // accumulated: keep zeros
    grads.grad_beta = Tensor::zeros({d});

    const float* px = x.data();
    const float* pgo = grad_out.data();
    const float* pg = gamma.data();
    float* pdx = grads.grad_x.data();
    float* pdg = grads.grad_gamma.data();
    float* pdb = grads.grad_beta.data();

    // grad_x rows are independent; grad_gamma / grad_beta accumulate
    // across rows, so each chunk sums into a private partial buffer and
    // the partials are folded in fixed chunk order afterwards. Chunk
    // boundaries depend only on (rows, d), keeping the fold — and thus
    // the result — bit-identical at any thread count.
    const int64_t grain = rowGrain(d);
    const int64_t num_chunks = support::chunkCountFor(0, rows, grain);
    std::vector<float> partials(static_cast<size_t>(num_chunks) * 2 * d,
                                0.0f);

    support::parallelFor(0, rows, grain, [&](int64_t lo, int64_t hi) {
        float* part_dg = partials.data() + (lo / grain) * 2 * d;
        float* part_db = part_dg + d;
        for (int64_t r = lo; r < hi; ++r) {
            const float* row = px + r * d;
            const float* go = pgo + r * d;
            float* dx = pdx + r * d;
            double mean = 0.0;
            for (int64_t i = 0; i < d; ++i) mean += row[i];
            mean /= d;
            double var = 0.0;
            for (int64_t i = 0; i < d; ++i) {
                const double c = row[i] - mean;
                var += c * c;
            }
            var /= d;
            const double inv_std = 1.0 / std::sqrt(var + eps);

            double sum_gxhat = 0.0;
            double sum_g = 0.0;
            for (int64_t i = 0; i < d; ++i) {
                const double xhat = (row[i] - mean) * inv_std;
                const double g = go[i] * pg[i];
                sum_gxhat += g * xhat;
                sum_g += g;
                part_dg[i] += static_cast<float>(go[i] * xhat);
                part_db[i] += go[i];
            }
            for (int64_t i = 0; i < d; ++i) {
                const double xhat = (row[i] - mean) * inv_std;
                const double g = go[i] * pg[i];
                dx[i] = static_cast<float>(
                    inv_std * (g - sum_g / d - xhat * sum_gxhat / d));
            }
        }
    });
    for (int64_t c = 0; c < num_chunks; ++c) {
        const float* part_dg = partials.data() + c * 2 * d;
        const float* part_db = part_dg + d;
        for (int64_t i = 0; i < d; ++i) {
            pdg[i] += part_dg[i];
            pdb[i] += part_db[i];
        }
    }
    return grads;
}

Tensor
dropout(const Tensor& a, float p, uint64_t seed)
{
    if (p <= 0.0f) {
        return a.clone();
    }
    SLAPO_CHECK(p < 1.0f, "dropout: p must be in [0, 1), got " << p);
    Tensor out = Tensor::empty(a.shape());
    Rng rng(seed);
    const float inv_keep = 1.0f / (1.0f - p);
    const float* pa = a.data();
    float* po = out.data();
    for (int64_t i = 0; i < a.numel(); ++i) {
        po[i] = rng.uniform() < p ? 0.0f : pa[i] * inv_keep;
    }
    return out;
}

Tensor
dropoutBackward(const Tensor& grad, float p, uint64_t seed)
{
    // The mask is a deterministic function of the seed, so backward simply
    // reapplies the forward transformation to the upstream gradient.
    return dropout(grad, p, seed);
}

Tensor
concat(const std::vector<Tensor>& parts, int64_t axis)
{
    SLAPO_CHECK(!parts.empty(), "concat: no inputs");
    const Tensor& first = parts.front();
    int64_t ax = axis < 0 ? axis + first.dim() : axis;
    SLAPO_CHECK(ax >= 0 && ax < first.dim(), "concat: bad axis " << axis);

    Shape out_shape = first.shape();
    int64_t total = 0;
    for (const Tensor& t : parts) {
        SLAPO_CHECK(t.dim() == first.dim(), "concat: rank mismatch");
        for (int64_t d = 0; d < t.dim(); ++d) {
            if (d != ax) {
                SLAPO_CHECK(t.size(d) == first.size(d),
                            "concat: shape mismatch on axis " << d);
            }
        }
        total += t.size(ax);
    }
    out_shape[ax] = total;
    Tensor out = Tensor::empty(out_shape);

    // outer = product of dims before axis; inner = product after.
    int64_t outer = 1;
    for (int64_t d = 0; d < ax; ++d) outer *= first.size(d);
    int64_t inner = 1;
    for (int64_t d = ax + 1; d < first.dim(); ++d) inner *= first.size(d);

    float* po = out.data();
    int64_t axis_offset = 0;
    for (const Tensor& t : parts) {
        const int64_t a_len = t.size(ax);
        const float* pt = t.data();
        for (int64_t o = 0; o < outer; ++o) {
            std::copy(pt + o * a_len * inner, pt + (o + 1) * a_len * inner,
                      po + (o * total + axis_offset) * inner);
        }
        axis_offset += a_len;
    }
    return out;
}

std::vector<Tensor>
chunk(const Tensor& a, int64_t n, int64_t axis)
{
    int64_t ax = axis < 0 ? axis + a.dim() : axis;
    SLAPO_CHECK(ax >= 0 && ax < a.dim(), "chunk: bad axis " << axis);
    SLAPO_CHECK(a.size(ax) % n == 0,
                "chunk: axis extent " << a.size(ax) << " not divisible by " << n);
    const int64_t step = a.size(ax) / n;
    std::vector<Tensor> out;
    out.reserve(n);
    for (int64_t i = 0; i < n; ++i) {
        out.push_back(narrow(a, ax, i * step, step));
    }
    return out;
}

Tensor
narrow(const Tensor& a, int64_t axis, int64_t start, int64_t length)
{
    int64_t ax = axis < 0 ? axis + a.dim() : axis;
    SLAPO_CHECK(ax >= 0 && ax < a.dim(), "narrow: bad axis " << axis);
    SLAPO_CHECK(start >= 0 && start + length <= a.size(ax),
                "narrow: slice [" << start << ", " << start + length
                                  << ") out of range for axis extent "
                                  << a.size(ax));
    Shape out_shape = a.shape();
    out_shape[ax] = length;
    Tensor out = Tensor::empty(out_shape);

    int64_t outer = 1;
    for (int64_t d = 0; d < ax; ++d) outer *= a.size(d);
    int64_t inner = 1;
    for (int64_t d = ax + 1; d < a.dim(); ++d) inner *= a.size(d);

    const float* pa = a.data();
    float* po = out.data();
    const int64_t full = a.size(ax);
    for (int64_t o = 0; o < outer; ++o) {
        std::copy(pa + (o * full + start) * inner,
                  pa + (o * full + start + length) * inner,
                  po + o * length * inner);
    }
    return out;
}

Tensor
narrowBackward(const Tensor& grad, const Shape& in_shape, int64_t axis,
               int64_t start)
{
    int64_t ax = axis < 0 ? axis + static_cast<int64_t>(in_shape.size()) : axis;
    Tensor out = Tensor::zeros(in_shape);
    const int64_t length = grad.size(ax);

    int64_t outer = 1;
    for (int64_t d = 0; d < ax; ++d) outer *= in_shape[d];
    int64_t inner = 1;
    for (size_t d = ax + 1; d < in_shape.size(); ++d) inner *= in_shape[d];

    const float* pg = grad.data();
    float* po = out.data();
    const int64_t full = in_shape[ax];
    for (int64_t o = 0; o < outer; ++o) {
        std::copy(pg + o * length * inner, pg + (o + 1) * length * inner,
                  po + (o * full + start) * inner);
    }
    return out;
}

Tensor
permute(const Tensor& a, const std::vector<int64_t>& perm)
{
    SLAPO_CHECK(static_cast<int64_t>(perm.size()) == a.dim(),
                "permute: perm rank mismatch");
    Shape out_shape(a.dim());
    for (int64_t d = 0; d < a.dim(); ++d) {
        out_shape[d] = a.size(perm[d]);
    }
    Tensor out = Tensor::empty(out_shape);
    const auto in_strides = stridesOf(a.shape());
    const auto out_strides = stridesOf(out_shape);
    const float* pa = a.data();
    float* po = out.data();
    for (int64_t flat = 0; flat < a.numel(); ++flat) {
        int64_t rem = flat;
        int64_t src = 0;
        for (int64_t d = 0; d < a.dim(); ++d) {
            const int64_t idx = rem / out_strides[d];
            rem %= out_strides[d];
            src += idx * in_strides[perm[d]];
        }
        po[flat] = pa[src];
    }
    return out;
}

Tensor
embedding(const Tensor& ids, const Tensor& table)
{
    SLAPO_CHECK(table.dim() == 2, "embedding: table must be 2-D");
    const int64_t vocab = table.size(0);
    const int64_t dim = table.size(1);
    Shape out_shape = ids.shape();
    out_shape.push_back(dim);
    Tensor out = Tensor::empty(out_shape);
    const float* pi = ids.data();
    const float* pt = table.data();
    float* po = out.data();
    for (int64_t i = 0; i < ids.numel(); ++i) {
        const int64_t id = static_cast<int64_t>(pi[i]);
        SLAPO_CHECK(id >= 0 && id < vocab,
                    "embedding: id " << id << " out of vocab " << vocab);
        std::copy(pt + id * dim, pt + (id + 1) * dim, po + i * dim);
    }
    return out;
}

Tensor
embeddingBackward(const Tensor& grad_out, const Tensor& ids, int64_t vocab)
{
    const int64_t dim = grad_out.size(-1);
    Tensor grad_table = Tensor::zeros({vocab, dim});
    const float* pg = grad_out.data();
    const float* pi = ids.data();
    float* pt = grad_table.data();
    for (int64_t i = 0; i < ids.numel(); ++i) {
        const int64_t id = static_cast<int64_t>(pi[i]);
        for (int64_t d = 0; d < dim; ++d) {
            pt[id * dim + d] += pg[i * dim + d];
        }
    }
    return grad_table;
}

Tensor
mseLoss(const Tensor& pred, const Tensor& target)
{
    SLAPO_CHECK(pred.shape() == target.shape(), "mseLoss: shape mismatch");
    double acc = 0.0;
    const float* pp = pred.data();
    const float* pt = target.data();
    for (int64_t i = 0; i < pred.numel(); ++i) {
        const double d = pp[i] - pt[i];
        acc += d * d;
    }
    return Tensor::fromValues({1}, {static_cast<float>(acc / pred.numel())});
}

Tensor
mseLossBackward(const Tensor& pred, const Tensor& target)
{
    Tensor out = Tensor::empty(pred.shape());
    const float* pp = pred.data();
    const float* pt = target.data();
    float* po = out.data();
    const float s = 2.0f / static_cast<float>(pred.numel());
    for (int64_t i = 0; i < pred.numel(); ++i) {
        po[i] = s * (pp[i] - pt[i]);
    }
    return out;
}

Tensor
crossEntropy(const Tensor& logits, const Tensor& targets)
{
    const int64_t vocab = logits.size(-1);
    const int64_t rows = logits.numel() / vocab;
    SLAPO_CHECK(targets.numel() == rows, "crossEntropy: target count mismatch");
    Tensor probs = softmax(logits);
    const float* pp = probs.data();
    const float* pt = targets.data();
    double acc = 0.0;
    for (int64_t r = 0; r < rows; ++r) {
        const int64_t t = static_cast<int64_t>(pt[r]);
        SLAPO_CHECK(t >= 0 && t < vocab, "crossEntropy: bad target " << t);
        acc -= std::log(std::max(pp[r * vocab + t], 1e-12f));
    }
    return Tensor::fromValues({1}, {static_cast<float>(acc / rows)});
}

Tensor
crossEntropyBackward(const Tensor& logits, const Tensor& targets)
{
    const int64_t vocab = logits.size(-1);
    const int64_t rows = logits.numel() / vocab;
    Tensor grad = softmax(logits);
    float* pg = grad.data();
    const float* pt = targets.data();
    const float inv = 1.0f / static_cast<float>(rows);
    for (int64_t r = 0; r < rows; ++r) {
        const int64_t t = static_cast<int64_t>(pt[r]);
        pg[r * vocab + t] -= 1.0f;
    }
    for (int64_t i = 0; i < grad.numel(); ++i) {
        pg[i] *= inv;
    }
    return grad;
}

Tensor
conv2d(const Tensor& x, const Tensor& w, int64_t stride, int64_t pad)
{
    SLAPO_CHECK(x.dim() == 4 && w.dim() == 4, "conv2d: expects NCHW x and OIHW w");
    const int64_t B = x.size(0), Cin = x.size(1), H = x.size(2), W = x.size(3);
    const int64_t Cout = w.size(0), kh = w.size(2), kw = w.size(3);
    SLAPO_CHECK(w.size(1) == Cin, "conv2d: channel mismatch");
    const int64_t Ho = (H + 2 * pad - kh) / stride + 1;
    const int64_t Wo = (W + 2 * pad - kw) / stride + 1;
    Tensor out = Tensor::empty({B, Cout, Ho, Wo});
    const float* px = x.data();
    const float* pw = w.data();
    float* po = out.data();
    // One unit = one (batch, out-channel) output plane: units write
    // disjoint planes and each output pixel keeps its fixed
    // ci -> kh -> kw accumulation order, so any partitioning is
    // bit-deterministic.
    support::parallelFor(0, B * Cout, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t u = lo; u < hi; ++u) {
        const int64_t b = u / Cout;
        const int64_t co = u % Cout;
        {
            for (int64_t ho = 0; ho < Ho; ++ho) {
                for (int64_t wo = 0; wo < Wo; ++wo) {
                    double acc = 0.0;
                    for (int64_t ci = 0; ci < Cin; ++ci) {
                        for (int64_t i = 0; i < kh; ++i) {
                            const int64_t hi = ho * stride + i - pad;
                            if (hi < 0 || hi >= H) continue;
                            for (int64_t j = 0; j < kw; ++j) {
                                const int64_t wi = wo * stride + j - pad;
                                if (wi < 0 || wi >= W) continue;
                                acc += px[((b * Cin + ci) * H + hi) * W + wi] *
                                       pw[((co * Cin + ci) * kh + i) * kw + j];
                            }
                        }
                    }
                    po[((b * Cout + co) * Ho + ho) * Wo + wo] =
                        static_cast<float>(acc);
                }
            }
        }
      }
    });
    return out;
}

Tensor
batchNorm2d(const Tensor& x, const Tensor& gamma, const Tensor& beta, float eps)
{
    SLAPO_CHECK(x.dim() == 4, "batchNorm2d: expects NCHW");
    const int64_t B = x.size(0), C = x.size(1), H = x.size(2), W = x.size(3);
    SLAPO_CHECK(gamma.numel() == C && beta.numel() == C,
                "batchNorm2d: affine size mismatch");
    Tensor out = Tensor::empty(x.shape());
    const float* px = x.data();
    const float* pg = gamma.data();
    const float* pb = beta.data();
    float* po = out.data();
    const int64_t per_c = B * H * W;
    // Channels are fully independent (each owns its statistics and its
    // strided output slice), so the channel loop parallelizes directly.
    support::parallelFor(0, C, 1, [&](int64_t c_lo, int64_t c_hi) {
      for (int64_t c = c_lo; c < c_hi; ++c) {
        double mean = 0.0;
        for (int64_t b = 0; b < B; ++b) {
            for (int64_t i = 0; i < H * W; ++i) {
                mean += px[(b * C + c) * H * W + i];
            }
        }
        mean /= per_c;
        double var = 0.0;
        for (int64_t b = 0; b < B; ++b) {
            for (int64_t i = 0; i < H * W; ++i) {
                const double d = px[(b * C + c) * H * W + i] - mean;
                var += d * d;
            }
        }
        var /= per_c;
        const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps));
        for (int64_t b = 0; b < B; ++b) {
            for (int64_t i = 0; i < H * W; ++i) {
                const int64_t idx = (b * C + c) * H * W + i;
                po[idx] = (px[idx] - static_cast<float>(mean)) * inv_std * pg[c] +
                          pb[c];
            }
        }
      }
    });
    return out;
}

Tensor
globalAvgPool(const Tensor& x)
{
    SLAPO_CHECK(x.dim() == 4, "globalAvgPool: expects NCHW");
    const int64_t B = x.size(0), C = x.size(1), HW = x.size(2) * x.size(3);
    Tensor out = Tensor::empty({B, C});
    const float* px = x.data();
    float* po = out.data();
    for (int64_t b = 0; b < B; ++b) {
        for (int64_t c = 0; c < C; ++c) {
            double acc = 0.0;
            for (int64_t i = 0; i < HW; ++i) {
                acc += px[(b * C + c) * HW + i];
            }
            po[b * C + c] = static_cast<float>(acc / HW);
        }
    }
    return out;
}

} // namespace ops
} // namespace slapo
