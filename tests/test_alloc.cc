/** @file Tests of the caching tensor allocator (tensor/alloc.h) and the
 * static memory planner (graph/memplan.h): size-class rounding, pool
 * round-trips, zero steady-state tensor-storage heap allocations in a
 * warm training loop (counter-asserted), plan caching / invalidation /
 * determinism, and bit-exact losses with the pool and planner on or off
 * at 1/2/4 kernel threads. */
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "graph/memplan.h"
#include "models/dataset.h"
#include "models/registry.h"
#include "nn/interpreter.h"
#include "nn/layers.h"
#include "obs/metrics.h"
#include "runtime/autograd.h"
#include "runtime/trainer.h"
#include "support/parallel.h"
#include "tensor/alloc.h"
#include "tensor/ops.h"

namespace slapo {
namespace {

/** Restore the default allocator / planner / thread configuration no
 * matter what a test toggled. */
class AllocTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        alloc::setMode(alloc::Mode::Pool);
        graph::setMemPlanEnabled(true);
        alloc::clearPool();
    }

    void
    TearDown() override
    {
        alloc::setMode(alloc::Mode::Pool);
        graph::setMemPlanEnabled(true);
        setNumThreads(0);
        alloc::clearPool();
    }
};

/** x -> scale -> gelu -> add(x) -> out; gelu and add are in-place
 * candidates (their input 0 dies at them), scale is not (x lives on). */
std::shared_ptr<graph::Graph>
buildChainGraph()
{
    using graph::NodeKind;
    auto g = std::make_shared<graph::Graph>();
    graph::Node* x = g->createNode(NodeKind::Placeholder, "x");
    x->setShapes({{2, 4}});
    graph::Node* s = g->createNode(NodeKind::CallOp, "scale");
    s->setOp(graph::OpKind::Scale);
    s->setAttr("factor", 2.0);
    s->addInput(x);
    s->setShapes({{2, 4}});
    graph::Node* ge = g->createNode(NodeKind::CallOp, "gelu");
    ge->setOp(graph::OpKind::Gelu);
    ge->addInput(s);
    ge->setShapes({{2, 4}});
    graph::Node* add = g->createNode(NodeKind::CallOp, "add");
    add->setOp(graph::OpKind::Add);
    add->addInput(ge);
    add->addInput(x);
    add->setShapes({{2, 4}});
    graph::Node* out = g->createNode(NodeKind::Output, "out");
    out->addInput(add);
    out->setShapes({{2, 4}});
    g->setOutputNode(out);
    return g;
}

bool
bitwiseEqual(const Tensor& a, const Tensor& b)
{
    return a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(),
                       static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

TEST_F(AllocTest, SizeClassRounding)
{
    EXPECT_EQ(alloc::sizeClassFor(1), alloc::kMinClassElems);
    EXPECT_EQ(alloc::sizeClassFor(64), 64);
    EXPECT_EQ(alloc::sizeClassFor(65), 128);
    EXPECT_EQ(alloc::sizeClassFor(128), 128);
    EXPECT_EQ(alloc::sizeClassFor(1000), 1024);
}

TEST_F(AllocTest, PoolRoundTripServesFromFreeList)
{
    int64_t cap = 0;
    float* p = alloc::acquire(100, &cap);
    EXPECT_EQ(cap, 128);
    alloc::release(p, cap);
    EXPECT_EQ(alloc::pooledBytes(),
              cap * static_cast<int64_t>(sizeof(float)));

    const int64_t hits0 = obs::metrics().alloc_pool_hits.get();
    const int64_t reuse0 = obs::metrics().alloc_reuse_bytes.get();
    int64_t cap2 = 0;
    float* q = alloc::acquire(128, &cap2); // same size class
    EXPECT_EQ(q, p); // LIFO free list hands the parked buffer back
    EXPECT_EQ(cap2, cap);
    EXPECT_EQ(obs::metrics().alloc_pool_hits.get(), hits0 + 1);
    EXPECT_EQ(obs::metrics().alloc_reuse_bytes.get(),
              reuse0 + cap * static_cast<int64_t>(sizeof(float)));
    EXPECT_EQ(alloc::pooledBytes(), 0);
    alloc::release(q, cap2);
    alloc::clearPool();
    EXPECT_EQ(alloc::pooledBytes(), 0);
}

TEST_F(AllocTest, MallocModeBypassesPool)
{
    alloc::setMode(alloc::Mode::Malloc);
    const int64_t misses0 = obs::metrics().alloc_pool_misses.get();
    int64_t cap = 0;
    float* p = alloc::acquire(10, &cap);
    EXPECT_EQ(obs::metrics().alloc_pool_misses.get(), misses0 + 1);
    alloc::release(p, cap);
    EXPECT_EQ(alloc::pooledBytes(), 0); // freed, not parked
}

TEST_F(AllocTest, DroppedTensorStorageParksInPool)
{
    alloc::clearPool();
    {
        Tensor t = Tensor::zeros({32, 32}); // exactly the 1024 class
        EXPECT_EQ(alloc::pooledBytes(), 0);
    }
    EXPECT_EQ(alloc::pooledBytes(), 1024 * static_cast<int64_t>(sizeof(float)));
    alloc::clearPool();
}

TEST_F(AllocTest, ScratchDrawsFromAndReturnsToPool)
{
    alloc::clearPool();
    {
        alloc::Scratch s(200);
        ASSERT_NE(s.data(), nullptr);
        s.data()[0] = 1.0f;
        s.data()[199] = 2.0f;
        EXPECT_EQ(alloc::pooledBytes(), 0);
    }
    EXPECT_EQ(alloc::pooledBytes(), 256 * static_cast<int64_t>(sizeof(float)));
    alloc::clearPool();
}

TEST_F(AllocTest, MemPlanCachedPerShapeAndInvalidatedOnMutation)
{
    auto g = buildChainGraph();
    const std::vector<Shape> shapes = {{2, 4}};

    auto p1 = graph::memPlanFor(*g, shapes);
    auto p2 = graph::memPlanFor(*g, shapes);
    EXPECT_EQ(p1.get(), p2.get()); // second lookup served from the cache

    // A different input signature gets its own plan.
    auto p3 = graph::memPlanFor(*g, {{4, 4}});
    EXPECT_NE(p3.get(), p1.get());

    // Any schedule mutation bumps the graph version and invalidates.
    const uint64_t v0 = g->version();
    graph::Node* dead = g->createNode(graph::NodeKind::CallOp, "dead");
    dead->setOp(graph::OpKind::Identity);
    dead->setShapes({{2, 4}});
    EXPECT_GT(g->version(), v0);
    auto p4 = graph::memPlanFor(*g, shapes);
    EXPECT_NE(p4.get(), p1.get());
}

TEST_F(AllocTest, MemPlanBuildIsDeterministic)
{
    auto g = buildChainGraph();
    const std::vector<Shape> shapes = {{2, 4}};
    auto a = graph::buildMemPlan(*g, shapes);
    auto b = graph::buildMemPlan(*g, shapes);
    ASSERT_EQ(a->actions.size(), b->actions.size());
    for (size_t i = 0; i < a->actions.size(); ++i) {
        EXPECT_EQ(a->actions[i].release_after, b->actions[i].release_after);
        EXPECT_EQ(a->actions[i].inplace, b->actions[i].inplace);
    }
    // The expected liveness for the chain: scale keeps x alive (second
    // use at add) so it is out-of-place; gelu and add consume their
    // input 0's last use and are in-place candidates.
    const auto nodes = g->nodes();
    EXPECT_FALSE(a->at(nodes[1]->id())->inplace); // scale
    EXPECT_TRUE(a->at(nodes[2]->id())->inplace);  // gelu
    EXPECT_TRUE(a->at(nodes[3]->id())->inplace);  // add
}

TEST_F(AllocTest, InterpreterPlannerOnOffBitIdentical)
{
    auto g = buildChainGraph();
    Tensor x = Tensor::fromValues(
        {2, 4}, {-1.5f, -0.25f, 0.0f, 0.75f, 1.0f, 2.5f, -3.0f, 0.125f});
    Tensor x_before = x.clone();

    graph::setMemPlanEnabled(true);
    auto on = nn::interpretGraph(*g, nullptr, {nn::Value(x)});
    // The caller still holds x, so the executor's storage-unique guard
    // must have kept every in-place rewrite off x's actual buffer.
    EXPECT_TRUE(bitwiseEqual(x, x_before));

    graph::setMemPlanEnabled(false);
    auto off = nn::interpretGraph(*g, nullptr, {nn::Value(x)});

    ASSERT_EQ(on.size(), off.size());
    ASSERT_EQ(on.size(), 1u);
    EXPECT_TRUE(bitwiseEqual(on[0].tensor(), off[0].tensor()));
}

TEST_F(AllocTest, TrainingStepHasZeroSteadyStateHeapAllocs)
{
    // The acceptance bar of the allocator: a steady-state training step
    // re-allocates exactly the shapes the previous step released, so
    // after warm-up every tensor-storage request is a pool hit and the
    // heap is never touched (pool_misses stays flat).
    auto model =
        runtime::withCrossEntropyLoss(models::buildTinyModel("bert"));
    model->initializeParams(7);
    AdamWConfig config;
    config.lr = 1e-3f;
    runtime::Trainer trainer(model, config);
    models::SyntheticDataset data("MLM", 64, 8, 3);

    for (int s = 0; s < 2; ++s) { // warm-up: populate the free lists
        models::Batch batch = data.batch(2, 0);
        trainer.step({batch.withTargets()});
    }
    const int64_t misses0 = obs::metrics().alloc_pool_misses.get();
    const int64_t hits0 = obs::metrics().alloc_pool_hits.get();
    models::Batch batch = data.batch(2, 0);
    trainer.step({batch.withTargets()});
    EXPECT_EQ(obs::metrics().alloc_pool_misses.get(), misses0)
        << "steady-state step touched the heap for tensor storage";
    EXPECT_GT(obs::metrics().alloc_pool_hits.get(), hits0);
}

TEST_F(AllocTest, LossesBitExactPoolVsMallocPlannerOnOffAcrossThreads)
{
    // The whole-substrate determinism contract: allocator backend,
    // memory planner, and kernel thread count are all numerically
    // invisible — three training steps produce bit-identical losses
    // under every combination.
    auto run = [](bool pool, bool plan, int threads) {
        alloc::setMode(pool ? alloc::Mode::Pool : alloc::Mode::Malloc);
        graph::setMemPlanEnabled(plan);
        setNumThreads(threads);
        auto model =
            runtime::withCrossEntropyLoss(models::buildTinyModel("bert"));
        model->initializeParams(17);
        AdamWConfig config;
        config.lr = 1e-2f;
        runtime::Trainer trainer(model, config);
        models::SyntheticDataset data("MLM", 64, 8, 3);
        std::vector<double> losses;
        for (int s = 0; s < 3; ++s) {
            models::Batch batch = data.batch(2, s % 2);
            losses.push_back(trainer.step({batch.withTargets()}).loss);
        }
        return losses;
    };

    const std::vector<double> ref = run(true, true, 1);
    ASSERT_EQ(ref.size(), 3u);
    for (int threads : {1, 2, 4}) {
        for (bool pool : {true, false}) {
            for (bool plan : {true, false}) {
                const std::vector<double> got = run(pool, plan, threads);
                ASSERT_EQ(got.size(), ref.size());
                for (size_t i = 0; i < ref.size(); ++i) {
                    EXPECT_EQ(got[i], ref[i])
                        << "step " << i << " pool=" << pool
                        << " plan=" << plan << " threads=" << threads;
                }
            }
        }
    }
}

} // namespace
} // namespace slapo
