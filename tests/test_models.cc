/** @file Tests of the model zoo: Table 2 parameter counts, forward
 * shapes at tiny scale, and architecture-specific properties. */
#include <gtest/gtest.h>

#include "models/dataset.h"
#include "models/registry.h"

namespace slapo {
namespace models {
namespace {

std::vector<Tensor>
runModel(nn::Module& m, const std::vector<Tensor>& inputs)
{
    std::vector<nn::Value> values;
    for (const Tensor& t : inputs) values.emplace_back(t);
    std::vector<Tensor> out;
    for (nn::Value& v : m.call(values)) out.push_back(v.tensor());
    return out;
}

/** Parameter counts should be within tolerance of Table 2. Our LM heads
 * are untied (each adds vocab x hidden), so decoder models get a wider
 * band; see DESIGN.md. */
struct ParamCase
{
    const char* name;
    int variant;
    double tolerance;
};

class Table2Params : public ::testing::TestWithParam<ParamCase>
{
};

TEST_P(Table2Params, MatchesPaperWithinTolerance)
{
    const ParamCase& c = GetParam();
    auto model = buildModel(c.name, c.variant);
    const double actual_m =
        static_cast<double>(model->numParams()) / 1e6;
    const double paper_m = modelInfo(c.name).paper_params_m[c.variant];
    EXPECT_NEAR(actual_m / paper_m, 1.0, c.tolerance)
        << c.name << " variant " << c.variant << ": " << actual_m
        << "M vs paper " << paper_m << "M";
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, Table2Params,
    ::testing::Values(ParamCase{"bert", 0, 0.15}, ParamCase{"roberta", 0, 0.15},
                      ParamCase{"albert", 0, 0.15}, ParamCase{"gpt", 0, 0.35},
                      ParamCase{"gpt", 1, 0.15}, ParamCase{"opt", 0, 0.20},
                      ParamCase{"t5", 0, 0.30}, ParamCase{"t5", 1, 0.30},
                      ParamCase{"wideresnet", 0, 0.15}),
    [](const auto& info) {
        return std::string(info.param.name) + "_v" +
               std::to_string(info.param.variant);
    });

TEST(Models, Gpt10BIsTenBillion)
{
    auto model = buildGpt10B();
    const double params_b = static_cast<double>(model->numParams()) / 1e9;
    EXPECT_NEAR(params_b, 10.0, 1.5);
}

TEST(Models, PaperScaleModelsAreMeta)
{
    auto model = buildModel("bert", 0);
    for (auto& [path, t] : model->namedParams()) {
        EXPECT_TRUE(t->isMeta()) << path;
    }
}

class TinyForward : public ::testing::TestWithParam<const char*>
{
};

TEST_P(TinyForward, ProducesLogits)
{
    const std::string name = GetParam();
    auto model = buildTinyModel(name);
    model->initializeParams(7);
    std::vector<Tensor> inputs;
    if (name == "t5") {
        inputs = {Tensor::randint({2, 8}, 64, 1),
                  Tensor::randint({2, 8}, 64, 2)};
    } else if (name == "wideresnet") {
        inputs = {Tensor::uniform({2, 3, 16, 16}, 1.0f, 3)};
    } else {
        inputs = {Tensor::randint({2, 8}, 64, 1)};
    }
    auto out = runModel(*model, inputs);
    ASSERT_EQ(out.size(), 1u);
    if (name == "wideresnet") {
        EXPECT_EQ(out[0].shape(), (Shape{2, 10}));
    } else {
        EXPECT_EQ(out[0].shape().size(), 3u);
        EXPECT_EQ(out[0].shape()[0], 2);
        EXPECT_EQ(out[0].shape()[1], 8);
        EXPECT_EQ(out[0].shape()[2], 64); // vocab logits
    }
    // Deterministic: same inputs, same outputs.
    auto out2 = runModel(*model, inputs);
    EXPECT_TRUE(Tensor::allClose(out[0], out2[0]));
}

INSTANTIATE_TEST_SUITE_P(AllModels, TinyForward,
                         ::testing::Values("bert", "roberta", "albert", "gpt",
                                           "opt", "t5", "wideresnet"));

TEST(Models, GptTopIsUntraceableOptIsNot)
{
    EXPECT_FALSE(buildModel("gpt", 0)->traceable());
    EXPECT_TRUE(buildModel("opt", 0)->traceable());
    EXPECT_TRUE(buildModel("bert", 0)->traceable());
}

TEST(Models, MegatronSupportFlagsMatchPaper)
{
    EXPECT_TRUE(modelInfo("bert").megatron_supported);
    EXPECT_TRUE(modelInfo("gpt").megatron_supported);
    EXPECT_TRUE(modelInfo("t5").megatron_supported);
    EXPECT_FALSE(modelInfo("roberta").megatron_supported);
    EXPECT_FALSE(modelInfo("albert").megatron_supported);
    EXPECT_FALSE(modelInfo("opt").megatron_supported);
    EXPECT_FALSE(modelInfo("wideresnet").megatron_supported);
}

TEST(Models, AlbertSharesOneLayer)
{
    auto model = buildTinyModel("albert");
    // A single shared TransformerLayer regardless of the logical depth.
    int layer_modules = 0;
    for (auto& [path, m] : model->namedModules()) {
        if (m->typeName() == "TransformerLayer") {
            ++layer_modules;
        }
    }
    EXPECT_EQ(layer_modules, 1);
    // Scheduling the shared layer schedules every application: params of
    // ALBERT are far fewer than an unshared model of the same depth.
    auto bert = buildTinyModel("bert");
    // Tiny ALBERT has 2 logical layers but only one layer's params.
    EXPECT_LT(model->findByPath("shared_layer")->numParams() * 2,
              2 * bert->findByPath("encoder")->numParams() + 1);
}

TEST(Models, CausalModelsIgnoreFutureTokens)
{
    auto model = buildTinyModel("opt");
    model->initializeParams(11);
    Tensor ids1 = Tensor::randint({1, 8}, 64, 13);
    Tensor ids2 = ids1.clone();
    ids2.set(7, static_cast<float>(static_cast<int64_t>(ids2.at(7) + 1) % 64));
    auto o1 = runModel(*model, {ids1});
    auto o2 = runModel(*model, {ids2});
    // Logits at position 0 are unaffected by a change at position 7.
    for (int64_t v = 0; v < 64; ++v) {
        EXPECT_NEAR(o1[0].at(v), o2[0].at(v), 1e-4f);
    }
}

TEST(Models, BidirectionalModelsSeeAllTokens)
{
    auto model = buildTinyModel("bert");
    model->initializeParams(17);
    Tensor ids1 = Tensor::randint({1, 8}, 64, 19);
    Tensor ids2 = ids1.clone();
    ids2.set(7, static_cast<float>(static_cast<int64_t>(ids2.at(7) + 1) % 64));
    auto o1 = runModel(*model, {ids1});
    auto o2 = runModel(*model, {ids2});
    EXPECT_GT(Tensor::maxAbsDiff(o1[0], o2[0]), 1e-6f);
}

TEST(Models, T5UsesRelativeAttentionBias)
{
    auto t5 = buildTinyModel("t5");
    int biased = 0;
    for (auto& [path, m] : t5->namedModules()) {
        if (m->hasParam("rel_bias")) {
            ++biased;
            // Self-attention cores only; cross-attention has none.
            EXPECT_EQ(path.find("cross"), std::string::npos) << path;
        }
    }
    // Encoder layers + decoder self-attention layers.
    EXPECT_GE(biased, 4);
    // BERT/GPT have no relative bias. (The model must outlive the loop:
    // namedModules() returns raw pointers into it.)
    auto bert = buildTinyModel("bert");
    for (auto& [path, m] : bert->namedModules()) {
        EXPECT_FALSE(m->hasParam("rel_bias")) << path;
    }
}

TEST(Models, RelativeBiasChangesTheFunction)
{
    // Same seed, with vs without the bias: outputs must differ (the
    // overhead Megatron's fixed embeddings avoid is real computation).
    TransformerConfig with_bias = tinyConfig("t5");
    auto model = std::make_shared<T5Model>(with_bias);
    model->initializeParams(401);
    // Give the tables a non-trivial value (uniform init already does).
    Tensor src = Tensor::randint({1, 8}, 64, 403);
    Tensor tgt = Tensor::randint({1, 8}, 64, 405);
    auto before = runModel(*model, {src, tgt});
    for (auto& [path, m] : model->namedModules()) {
        if (m->typeName() == "CoreAttention") {
            static_cast<nn::CoreAttention*>(m)->disableRelativeBias();
        }
    }
    auto after = runModel(*model, {src, tgt});
    EXPECT_GT(Tensor::maxAbsDiff(before[0], after[0]), 1e-6f);
}

TEST(Models, T5DecoderAttendsToEncoder)
{
    auto model = buildTinyModel("t5");
    model->initializeParams(23);
    Tensor src1 = Tensor::randint({1, 8}, 64, 29);
    Tensor src2 = Tensor::randint({1, 8}, 64, 31);
    Tensor tgt = Tensor::randint({1, 8}, 64, 37);
    auto o1 = runModel(*model, {src1, tgt});
    auto o2 = runModel(*model, {src2, tgt});
    EXPECT_GT(Tensor::maxAbsDiff(o1[0], o2[0]), 1e-6f);
}

TEST(Models, Table2SeqLengthsMatchPaper)
{
    EXPECT_EQ(modelConfig("bert", 0).seq_len, 512);
    EXPECT_EQ(modelConfig("gpt", 0).seq_len, 1024);
    EXPECT_EQ(modelConfig("opt", 0).seq_len, 1024);
    EXPECT_EQ(modelConfig("t5", 0).seq_len, 1024);
    EXPECT_EQ(modelConfig("t5", 0).decoder_seq_len, 512);
    EXPECT_EQ(modelInfo("wideresnet").seq_len, 224);
    EXPECT_EQ(modelInfo("wideresnet").precision, "FP32");
}

TEST(Models, WideResNetDownsamples)
{
    WideResNetConfig config;
    config.depth = 10;
    config.width = 1;
    config.num_classes = 5;
    WideResNet model(config);
    model.initializeParams(41);
    auto out = runModel(model, {Tensor::uniform({1, 3, 32, 32}, 1.0f, 43)});
    EXPECT_EQ(out[0].shape(), (Shape{1, 5}));
}

// --- synthetic workloads -------------------------------------------------------

TEST(Dataset, TaskNamesMatchTable2)
{
    EXPECT_EQ(taskOf("bert"), "MLM");
    EXPECT_EQ(taskOf("gpt"), "CLM");
    EXPECT_EQ(taskOf("t5"), "Seq2Seq");
    EXPECT_EQ(taskOf("wideresnet"), "IC");
}

TEST(Dataset, MlmMasksAndKeepsLabels)
{
    SyntheticDataset data("MLM", 64, 32, 7);
    Batch batch = data.batch(4, 0);
    ASSERT_EQ(batch.inputs.size(), 1u);
    EXPECT_EQ(batch.inputs[0].shape(), (Shape{4, 32}));
    EXPECT_EQ(batch.targets.shape(), (Shape{4, 32}));
    int masked = 0;
    for (int64_t i = 0; i < batch.inputs[0].numel(); ++i) {
        const float in = batch.inputs[0].at(i);
        const float label = batch.targets.at(i);
        EXPECT_GE(label, 0);
        EXPECT_LT(label, 64);
        if (in == static_cast<float>(data.maskToken())) {
            ++masked;
        } else {
            EXPECT_FLOAT_EQ(in, label); // unmasked positions unchanged
        }
    }
    EXPECT_GT(masked, 0);
    EXPECT_LT(masked, batch.inputs[0].numel() / 2);
}

TEST(Dataset, ClmLabelsAreShiftedInputs)
{
    SyntheticDataset data("CLM", 64, 16, 11);
    Batch batch = data.batch(2, 3);
    const Tensor& ids = batch.inputs[0];
    // labels[t] == ids[t + 1] within the common window.
    for (int64_t b = 0; b < 2; ++b) {
        for (int64_t s = 0; s + 1 < 16; ++s) {
            EXPECT_FLOAT_EQ(batch.targets.at(b * 16 + s),
                            ids.at(b * 16 + s + 1));
        }
    }
}

TEST(Dataset, Seq2SeqHasTwoStreams)
{
    SyntheticDataset data("Seq2Seq", 64, 8, 13);
    Batch batch = data.batch(3, 0);
    ASSERT_EQ(batch.inputs.size(), 2u);
    EXPECT_EQ(batch.inputs[0].shape(), (Shape{3, 8}));
    EXPECT_EQ(batch.inputs[1].shape(), (Shape{3, 8}));
    EXPECT_EQ(batch.targets.shape(), (Shape{3, 8}));
}

TEST(Dataset, DeterministicRandomAccess)
{
    SyntheticDataset a("MLM", 64, 16, 5);
    SyntheticDataset b("MLM", 64, 16, 5);
    Batch ba = a.batch(2, 9);
    Batch bb = b.batch(2, 9);
    EXPECT_TRUE(Tensor::allClose(ba.inputs[0], bb.inputs[0]));
    EXPECT_TRUE(Tensor::allClose(ba.targets, bb.targets));
    Batch different = a.batch(2, 10);
    EXPECT_FALSE(Tensor::allClose(ba.inputs[0], different.inputs[0]));
}

TEST(Dataset, ZipfFavorsSmallIds)
{
    SyntheticDataset data("CLM", 1000, 64, 17);
    Batch batch = data.batch(8, 0);
    int64_t small = 0;
    const Tensor& ids = batch.inputs[0];
    for (int64_t i = 0; i < ids.numel(); ++i) {
        if (ids.at(i) < 100) ++small; // top decile of ranks
    }
    // Zipf mass concentrates far above the uniform 10%.
    EXPECT_GT(small, ids.numel() / 2);
}

TEST(Dataset, ImageBatchesForIC)
{
    SyntheticDataset data("IC", 10, 16, 19);
    Batch batch = data.batch(2, 0);
    EXPECT_EQ(batch.inputs[0].shape(), (Shape{2, 3, 16, 16}));
    EXPECT_EQ(batch.targets.shape(), (Shape{2}));
    for (int64_t b = 0; b < 2; ++b) {
        EXPECT_LT(batch.targets.at(b), 10);
    }
}

TEST(Models, EmbeddingVocabPadding)
{
    nn::Embedding emb(30522, 8);
    emb.padVocabTo(30528);
    EXPECT_EQ(emb.vocabSize(), 30528);
    EXPECT_EQ(emb.paramTensor("weight").shape()[0], 30528);
    // Materialized padding keeps existing rows.
    nn::Embedding small(4, 2);
    small.setParamTensor("weight",
                         Tensor::fromValues({4, 2}, {1, 2, 3, 4, 5, 6, 7, 8}));
    small.padVocabTo(6);
    EXPECT_EQ(small.paramTensor("weight").shape()[0], 6);
    EXPECT_FLOAT_EQ(small.paramTensor("weight").at(7), 8);
    EXPECT_FLOAT_EQ(small.paramTensor("weight").at(10), 0);
}

} // namespace
} // namespace models
} // namespace slapo
