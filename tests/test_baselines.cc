/** @file Integration sweep: every schedule recipe on every model is
 * numerically verified against the unscheduled reference, plus baseline
 * behaviour details (TP fallback, fusion transform, eager policy). */
#include <gtest/gtest.h>

#include "baselines/detail.h"
#include "core/verify.h"
#include "models/registry.h"
#include "runtime/dist_executor.h"

namespace slapo {
namespace baselines {
namespace {

using nn::ModulePtr;

struct RecipeCase
{
    const char* model;
    const char* recipe; // "kernel", "ckpt", "tp", "tp_embed"
};

ScheduleRecipe
recipeOf(const std::string& name)
{
    if (name == "kernel") return ScheduleRecipe::kernelOptimized();
    if (name == "ckpt") return ScheduleRecipe::kernelOptimized(0.5);
    if (name == "tp") return ScheduleRecipe::tensorParallel(2, 0.0, false);
    if (name == "tp_embed") return ScheduleRecipe::tensorParallel(2, 0.5, true);
    SLAPO_THROW("unknown recipe " << name);
}

class RecipeEquivalence : public ::testing::TestWithParam<RecipeCase>
{
};

/**
 * Property: applying any recipe to any model preserves the computed
 * function exactly (the paper's central correctness claim, §5: "Slapo
 * does not change the semantics of models").
 */
TEST_P(RecipeEquivalence, SchedulePreservesSemantics)
{
    const RecipeCase& c = GetParam();
    ModulePtr model = models::buildTinyModel(c.model);
    model->initializeParams(17);
    ModulePtr reference = model->clone();

    core::SchedulePtr sch = applyRecipe(model, recipeOf(c.recipe));

    core::VerifyOptions vopts;
    const bool is_t5 = std::string(c.model) == "t5";
    const bool is_vision = std::string(c.model) == "wideresnet";
    vopts.input_gen = [is_t5, is_vision](int trial) {
        if (is_vision) {
            return std::vector<Tensor>{
                Tensor::uniform({2, 3, 16, 16}, 1.0f, 600 + trial)};
        }
        std::vector<Tensor> inputs = {Tensor::randint({2, 8}, 64, 700 + trial)};
        if (is_t5) {
            inputs.push_back(Tensor::randint({2, 8}, 64, 800 + trial));
        }
        return inputs;
    };
    core::verifyEndToEnd(*reference, *sch, vopts);
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsAllRecipes, RecipeEquivalence,
    ::testing::Values(
        RecipeCase{"bert", "kernel"}, RecipeCase{"bert", "ckpt"},
        RecipeCase{"bert", "tp"}, RecipeCase{"bert", "tp_embed"},
        RecipeCase{"roberta", "kernel"}, RecipeCase{"roberta", "tp_embed"},
        RecipeCase{"albert", "kernel"}, RecipeCase{"albert", "tp"},
        RecipeCase{"gpt", "kernel"}, RecipeCase{"gpt", "ckpt"},
        RecipeCase{"gpt", "tp"}, RecipeCase{"gpt", "tp_embed"},
        RecipeCase{"opt", "kernel"}, RecipeCase{"opt", "tp_embed"},
        RecipeCase{"t5", "kernel"}, RecipeCase{"t5", "tp"},
        RecipeCase{"wideresnet", "kernel"}, RecipeCase{"wideresnet", "ckpt"}),
    [](const auto& info) {
        return std::string(info.param.model) + "_" + info.param.recipe;
    });

TEST(Recipes, MegatronFusedSoftmaxIsAlsoExact)
{
    ModulePtr model = models::buildTinyModel("bert");
    model->initializeParams(19);
    ModulePtr reference = model->clone();
    ScheduleRecipe recipe = ScheduleRecipe::kernelOptimized();
    recipe.flash_attention = false;
    recipe.megatron_fused_softmax = true;
    core::SchedulePtr sch = applyRecipe(model, recipe);
    core::VerifyOptions vopts;
    vopts.input_gen = [](int trial) {
        return std::vector<Tensor>{Tensor::randint({2, 8}, 64, 900 + trial)};
    };
    core::verifyEndToEnd(*reference, *sch, vopts);
}

// --- baseline policy details -----------------------------------------------

TEST(Baselines, AdjustTpFallsBackOnIndivisibleHeads)
{
    // GPT-Neo 125M has 12 heads: tp=8 must fall back to 4 with dp=2.
    RunOptions options;
    options.tp = 8;
    options.dp = 1;
    RunOptions adjusted = detail::adjustTpForModel("gpt", 0, options);
    EXPECT_EQ(adjusted.tp, 4);
    EXPECT_EQ(adjusted.dp, 2);
    // BERT's 16 heads divide 8: unchanged.
    adjusted = detail::adjustTpForModel("bert", 0, options);
    EXPECT_EQ(adjusted.tp, 8);
    EXPECT_EQ(adjusted.dp, 1);
}

TEST(Baselines, EagerPicksBetterOfCheckpointOnOff)
{
    // On a memory-roomy device the non-checkpointed variant must win;
    // the policy must never return something worse than either option.
    auto cluster = sim::ClusterSpec::singleV100();
    BenchResult eager = runEager("bert", 0, cluster);
    ASSERT_FALSE(eager.stats.oom);
    BenchResult forced_full = detail::runRecipe(
        "Eager", "bert", 0, cluster, {}, ScheduleRecipe::kernelOptimized(1.0),
        0, sim::PipeSchedule::OneFOneB);
    (void)forced_full; // existence = API covered; eager >= vanilla variant
    BenchResult vanilla = detail::runRecipe(
        "Eager", "bert", 0, cluster, {}, ScheduleRecipe::vanilla(), 0,
        sim::PipeSchedule::OneFOneB);
    EXPECT_GE(eager.stats.throughput, vanilla.stats.throughput - 1e-9);
}

TEST(Baselines, DeepSpeedUsesZeroThree)
{
    auto cluster = sim::ClusterSpec::p3_16xlarge();
    RunOptions options;
    options.dp = 8;
    BenchResult ds = runDeepSpeed("bert", 0, cluster, options);
    ASSERT_FALSE(ds.stats.oom);
    EXPECT_EQ(ds.stats.config.zero_stage, 3);
    EXPECT_EQ(ds.stats.config.dp, 8);
}

TEST(Baselines, FuseElementwiseKeepsCommsAndBoundary)
{
    nn::Profile profile;
    nn::KernelRecord k;
    k.name = "gelu";
    profile.kernels.push_back(k);
    nn::CommRecord c;
    c.kind = "all_reduce";
    c.bytes = 42;
    profile.comms.push_back(c);
    profile.checkpoint_boundary_bytes = 7;
    nn::Profile fused = fuseElementwiseChains(profile);
    ASSERT_EQ(fused.comms.size(), 1u);
    EXPECT_DOUBLE_EQ(fused.comms[0].bytes, 42);
    EXPECT_DOUBLE_EQ(fused.checkpoint_boundary_bytes, 7);
}

TEST(Baselines, FuseElementwiseRespectsCheckpointBoundaries)
{
    // A checkpointed and a non-checkpointed pointwise kernel must not
    // merge (their backward treatment differs).
    nn::Profile profile;
    nn::KernelRecord a;
    a.name = "add";
    a.checkpointed = true;
    nn::KernelRecord b;
    b.name = "gelu";
    b.checkpointed = false;
    profile.kernels = {a, b};
    nn::Profile fused = fuseElementwiseChains(profile);
    EXPECT_EQ(fused.kernels.size(), 2u);
}

TEST(Baselines, ShapeFnMatchesTable2)
{
    auto bert = modelShapeFn("bert", 0)(4);
    ASSERT_EQ(bert.size(), 1u);
    EXPECT_EQ(bert[0], (Shape{4, 512}));
    auto t5 = modelShapeFn("t5", 0)(2);
    ASSERT_EQ(t5.size(), 2u);
    EXPECT_EQ(t5[0], (Shape{2, 1024}));
    EXPECT_EQ(t5[1], (Shape{2, 512}));
    auto wrn = modelShapeFn("wideresnet", 0)(8);
    EXPECT_EQ(wrn[0], (Shape{8, 3, 224, 224}));
    EXPECT_DOUBLE_EQ(modelBytesPerElement("wideresnet"), 4.0);
    EXPECT_DOUBLE_EQ(modelBytesPerElement("bert"), 2.0);
}

TEST(Baselines, RecipeAppliesToGpt10B)
{
    // The Fig. 9 model accepts the full TP recipe without error and
    // reports sharded parameter shapes after replication.
    auto sch = applyRecipe(models::buildGpt10B(),
                           ScheduleRecipe::tensorParallel(8, 1.0));
    auto replica = sch->module()->clone();
    runtime::DistExecutor::shardParamsForRank(*replica, 0, 8);
    auto qkv = replica->findByPath("decoder.layer.0.attention.self.qkv");
    EXPECT_EQ(qkv->paramTensor("weight").shape(),
              (Shape{3 * 4096 / 8, 4096}));
}

} // namespace
} // namespace baselines
} // namespace slapo
