/** @file Tests of the distributed runtime: collectives, rank sharding,
 * autograd (incl. checkpointing), and tensor-parallel training. */
#include <gtest/gtest.h>

#include <thread>

#include "baselines/slapo_schedules.h"
#include "core/schedule.h"
#include "sim/memory_model.h"
#include "models/dataset.h"
#include "models/registry.h"
#include "runtime/autograd.h"
#include "runtime/dist_executor.h"
#include "runtime/trainer.h"
#include "tensor/ops.h"
#include "tensor/optim.h"

namespace slapo {
namespace runtime {
namespace {

using nn::ModulePtr;

TEST(ProcessGroup, AllReduceSums)
{
    ProcessGroup group(4);
    std::vector<std::thread> threads;
    std::vector<Tensor> results(4);
    for (int r = 0; r < 4; ++r) {
        threads.emplace_back([&, r] {
            Tensor t = Tensor::full({3}, static_cast<float>(r + 1));
            results[r] = group.allReduce(r, t);
        });
    }
    for (auto& t : threads) t.join();
    for (int r = 0; r < 4; ++r) {
        EXPECT_FLOAT_EQ(results[r].at(0), 10.0f); // 1+2+3+4
    }
}

TEST(ProcessGroup, AllGatherConcatenates)
{
    ProcessGroup group(2);
    std::vector<std::thread> threads;
    std::vector<Tensor> results(2);
    for (int r = 0; r < 2; ++r) {
        threads.emplace_back([&, r] {
            Tensor t = Tensor::full({1, 2}, static_cast<float>(r));
            results[r] = group.allGather(r, t, 1);
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(results[0].shape(), (Shape{1, 4}));
    EXPECT_FLOAT_EQ(results[0].at(0), 0.0f);
    EXPECT_FLOAT_EQ(results[0].at(3), 1.0f);
    EXPECT_TRUE(Tensor::allClose(results[0], results[1]));
}

TEST(ProcessGroup, ReduceScatterSplitsTheSum)
{
    ProcessGroup group(2);
    std::vector<std::thread> threads;
    std::vector<Tensor> results(2);
    for (int r = 0; r < 2; ++r) {
        threads.emplace_back([&, r] {
            Tensor t = Tensor::fromValues({4}, {1, 2, 3, 4});
            results[r] = group.reduceScatter(r, t, 0);
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(results[0].shape(), (Shape{2}));
    EXPECT_FLOAT_EQ(results[0].at(0), 2.0f); // 1+1
    EXPECT_FLOAT_EQ(results[1].at(1), 8.0f); // 4+4
}

TEST(ProcessGroup, SequentialCollectivesStayConsistent)
{
    // Several back-to-back collectives must not cross-contaminate.
    ProcessGroup group(3);
    std::vector<std::thread> threads;
    std::vector<float> sums(3);
    for (int r = 0; r < 3; ++r) {
        threads.emplace_back([&, r] {
            float acc = 0;
            for (int k = 0; k < 5; ++k) {
                Tensor t = Tensor::full({1}, static_cast<float>(r + k));
                acc += group.allReduce(r, t).at(0);
            }
            sums[r] = acc;
        });
    }
    for (auto& t : threads) t.join();
    // Each round sums to 3k + 3; total over k=0..4: 3*10 + 15 = 45.
    for (int r = 0; r < 3; ++r) {
        EXPECT_FLOAT_EQ(sums[r], 45.0f);
    }
}

TEST(DistExecutor, ShardsColumnParallelLinear)
{
    nn::Linear lin(4, 8);
    lin.initializeParams(3);
    nn::ShardSpec spec;
    spec.axis = 0;
    spec.world_size = 2;
    lin.meta().sharded_params["weight"] = spec;
    lin.meta().sharded_params["bias"] = spec;

    ModulePtr replica = lin.clone();
    DistExecutor::shardParamsForRank(*replica, 1, 2);
    EXPECT_EQ(replica->paramTensor("weight").shape(), (Shape{4, 4}));
    // Rank 1 holds rows 4..7.
    EXPECT_FLOAT_EQ(replica->paramTensor("weight").at(0),
                    lin.paramTensor("weight").at(16));
}

TEST(DistExecutor, InterleavedShardKeepsQkvGroups)
{
    // A (6, 2) "fused" weight with q/k/v groups of 2 rows each.
    nn::Linear lin(2, 6);
    lin.setParamTensor("weight",
                       Tensor::fromValues({6, 2}, {0, 0, 1, 1,    // q
                                                   10, 10, 11, 11, // k
                                                   20, 20, 21, 21})); // v
    lin.setParamTensor("bias", Tensor::zeros({6}));
    nn::ShardSpec spec;
    spec.axis = 0;
    spec.world_size = 2;
    spec.interleave = 3;
    lin.meta().sharded_params["weight"] = spec;

    ModulePtr replica = lin.clone();
    DistExecutor::shardParamsForRank(*replica, 1, 2);
    const Tensor& w = replica->paramTensor("weight");
    EXPECT_EQ(w.shape(), (Shape{3, 2}));
    EXPECT_FLOAT_EQ(w.at(0), 1);  // q row 1
    EXPECT_FLOAT_EQ(w.at(2), 11); // k row 1
    EXPECT_FLOAT_EQ(w.at(4), 21); // v row 1
}

TEST(DistExecutor, RowParallelBiasScaled)
{
    nn::Linear lin(8, 4);
    lin.initializeParams(5);
    nn::ShardSpec spec;
    spec.axis = 1;
    spec.world_size = 2;
    lin.meta().sharded_params["weight"] = spec;

    ModulePtr replica = lin.clone();
    DistExecutor::shardParamsForRank(*replica, 0, 2);
    EXPECT_EQ(replica->paramTensor("weight").shape(), (Shape{4, 4}));
    EXPECT_NEAR(replica->paramTensor("bias").at(0),
                lin.paramTensor("bias").at(0) / 2.0f, 1e-6f);
}

TEST(DistExecutor, ShardedLinearPairMatchesDense)
{
    // fc1 column-parallel + fc2 row-parallel + all-reduce == dense pair.
    auto seq = std::make_shared<nn::Sequential>();
    seq->append(std::make_shared<nn::Linear>(6, 8));
    seq->append(std::make_shared<nn::Linear>(8, 6));
    seq->initializeParams(7);
    ModulePtr reference = seq->clone();

    nn::ShardSpec col;
    col.axis = 0;
    col.world_size = 2;
    seq->child("0")->meta().sharded_params["weight"] = col;
    seq->child("0")->meta().sharded_params["bias"] = col;
    nn::ShardSpec row;
    row.axis = 1;
    row.world_size = 2;
    seq->child("1")->meta().sharded_params["weight"] = row;
    nn::SyncSpec sync;
    sync.direction = nn::SyncDirection::Forward;
    seq->child("1")->meta().syncs.push_back(sync);

    Tensor x = Tensor::uniform({3, 6}, 1.0f, 11);
    std::vector<nn::Value> vx = {nn::Value(x)};
    Tensor expected = reference->callOne(vx).tensor();

    DistExecutor executor(2);
    auto outputs = executor.forward(*seq, {x});
    for (int r = 0; r < 2; ++r) {
        EXPECT_TRUE(Tensor::allClose(expected, outputs[r][0], 1e-4f));
    }
}

// --- autograd ----------------------------------------------------------------

TEST(Autograd, LinearRegressionGradsMatchFiniteDifference)
{
    auto lin = std::make_shared<nn::Linear>(3, 1);
    lin->initializeParams(13);
    auto model = withMseLoss(lin);

    Tensor x = Tensor::uniform({4, 3}, 1.0f, 17);
    Tensor y = Tensor::uniform({4, 1}, 1.0f, 19);

    AutogradEngine engine;
    GradResult result = engine.run(*model, {x, y});
    ASSERT_EQ(result.outputs.size(), 1u);

    Tensor& w = lin->paramTensor("weight");
    Tensor analytic = AutogradEngine::gradFor(result, w);
    // Finite differences on each weight entry.
    for (int64_t i = 0; i < w.numel(); ++i) {
        const float eps = 1e-3f;
        const float orig = w.at(i);
        auto loss_at = [&](float v) {
            w.set(i, v);
            AutogradEngine e2;
            return e2.run(*model, {x, y}).outputs[0].at(0);
        };
        const float fd = (loss_at(orig + eps) - loss_at(orig - eps)) / (2 * eps);
        w.set(i, orig);
        EXPECT_NEAR(analytic.at(i), fd, 5e-3f);
    }
}

TEST(Autograd, TransformerLossDecreasesUnderAdamW)
{
    auto model = withCrossEntropyLoss(models::buildTinyModel("bert"));
    model->initializeParams(23);

    AdamWConfig opt_config;
    opt_config.lr = 5e-3f;
    AdamW opt(opt_config);
    auto params = model->namedParams();
    for (auto& [path, t] : params) {
        opt.addParam(*t);
    }

    Tensor ids = Tensor::randint({2, 8}, 64, 29);
    Tensor targets = Tensor::randint({2, 8}, 64, 31);

    float first_loss = 0;
    float last_loss = 0;
    for (int step = 0; step < 8; ++step) {
        AutogradEngine engine;
        GradResult result = engine.run(*model, {ids, targets});
        const float loss = result.outputs[0].at(0);
        if (step == 0) first_loss = loss;
        last_loss = loss;
        std::vector<Tensor> grads;
        for (auto& [path, t] : params) {
            grads.push_back(AutogradEngine::gradFor(result, *t));
        }
        opt.step(grads);
    }
    EXPECT_LT(last_loss, first_loss);
}

TEST(Autograd, CheckpointingSavesMemorySameGrads)
{
    auto make_model = [] {
        auto m = withCrossEntropyLoss(models::buildTinyModel("bert"));
        m->initializeParams(37);
        return m;
    };
    auto plain = make_model();
    auto ckpt = make_model();
    // Checkpoint both encoder layers of the checkpointed copy.
    for (auto& [path, m] : ckpt->namedModules()) {
        if (m->typeName() == "TransformerLayer") {
            m->meta().checkpointed = true;
        }
    }

    Tensor ids = Tensor::randint({2, 8}, 64, 41);
    Tensor targets = Tensor::randint({2, 8}, 64, 43);

    AutogradEngine e1, e2;
    GradResult r1 = e1.run(*plain, {ids, targets});
    GradResult r2 = e2.run(*ckpt, {ids, targets});

    // Same loss and same gradients...
    EXPECT_NEAR(r1.outputs[0].at(0), r2.outputs[0].at(0), 1e-5f);
    auto p1 = plain->namedParams();
    auto p2 = ckpt->namedParams();
    ASSERT_EQ(p1.size(), p2.size());
    for (size_t i = 0; i < p1.size(); ++i) {
        Tensor g1 = AutogradEngine::gradFor(r1, *p1[i].second);
        Tensor g2 = AutogradEngine::gradFor(r2, *p2[i].second);
        EXPECT_TRUE(Tensor::allClose(g1, g2, 1e-4f))
            << "grad mismatch at " << p1[i].first;
    }
    // ...but less retained activation memory and some recompute.
    EXPECT_LT(r2.stored_activation_bytes, r1.stored_activation_bytes);
    EXPECT_GT(r2.recomputed_nodes, 0);
    EXPECT_EQ(r1.recomputed_nodes, 0);
}

TEST(Autograd, PartialCheckpointSubgraphRematerializes)
{
    // .checkpoint(subgraph): flag the GeLU + bias-add region inside one
    // FFN; gradients must be identical while the flagged activations are
    // evicted after forward and rematerialized in backward.
    auto make_model = [](bool partial_ckpt) {
        auto inner = models::buildTinyModel("bert");
        auto sch = core::Schedule::create(inner);
        core::Schedule& ffn = (*sch)["encoder.layer.0.ffn"];
        ffn["fc1"].decompose();
        nn::TraceOptions options;
        options.flatten = true;
        ffn.trace({{2, 8, 16}}, options);
        if (partial_ckpt) {
            auto matches = ffn.find(graph::Pattern::chain({"add", "gelu"}));
            ffn.checkpoint(matches.front());
        }
        auto m = withCrossEntropyLoss(inner);
        m->initializeParams(61);
        return m;
    };
    auto plain = make_model(false);
    auto partial = make_model(true);

    Tensor ids = Tensor::randint({2, 8}, 64, 63);
    Tensor targets = Tensor::randint({2, 8}, 64, 67);
    AutogradEngine e1, e2;
    GradResult r1 = e1.run(*plain, {ids, targets});
    GradResult r2 = e2.run(*partial, {ids, targets});

    EXPECT_NEAR(r1.outputs[0].at(0), r2.outputs[0].at(0), 1e-5f);
    auto p1 = plain->namedParams();
    auto p2 = partial->namedParams();
    for (size_t i = 0; i < p1.size(); ++i) {
        EXPECT_TRUE(Tensor::allClose(AutogradEngine::gradFor(r1, *p1[i].second),
                                     AutogradEngine::gradFor(r2, *p2[i].second),
                                     1e-4f))
            << p1[i].first;
    }
    EXPECT_LT(r2.stored_activation_bytes, r1.stored_activation_bytes);
    EXPECT_GT(r2.recomputed_nodes, 0);
}

TEST(Autograd, PartialCheckpointReducesProfiledActivations)
{
    auto make_profile = [](bool partial_ckpt) {
        auto model = models::buildTinyModel("bert");
        auto sch = core::Schedule::create(model);
        core::Schedule& ffn = (*sch)["encoder.layer.0.ffn"];
        ffn["fc1"].decompose();
        nn::TraceOptions options;
        options.flatten = true;
        ffn.trace({{2, 8, 16}}, options);
        if (partial_ckpt) {
            auto matches = ffn.find(graph::Pattern::chain({"add", "gelu"}));
            ffn.checkpoint(matches.front());
        }
        nn::Profiler profiler(2.0);
        {
            nn::ProfilerGuard guard(&profiler);
            model->call({nn::Value(Tensor::meta({2, 8}))});
        }
        return profiler.takeProfile();
    };
    nn::Profile without = make_profile(false);
    nn::Profile with = make_profile(true);
    sim::MemoryModel mm(2.0, 0, 1);
    EXPECT_LT(mm.activationMemory(with), mm.activationMemory(without));
    EXPECT_GT(with.checkpoint_boundary_bytes, 0);
}

TEST(Autograd, TensorParallelTrainingMatchesSingleDevice)
{
    // Full TP schedule on tiny BERT: forward AND backward must match the
    // single-device reference (gradients of a row-parallel weight shard
    // equal the corresponding slice of the dense gradient).
    auto model = models::buildTinyModel("bert");
    model->initializeParams(47);
    ModulePtr reference_inner = model->clone();

    auto sch = baselines::applyRecipe(
        model, baselines::ScheduleRecipe::tensorParallel(2, 0.0, true));
    auto scheduled = runtime::withCrossEntropyLoss(sch->module());
    auto reference = runtime::withCrossEntropyLoss(reference_inner);

    Tensor ids = Tensor::randint({2, 8}, 64, 53);
    Tensor targets = Tensor::randint({2, 8}, 64, 59);

    AutogradEngine ref_engine;
    GradResult ref = ref_engine.run(*reference, {ids, targets});

    DistExecutor executor(2);
    auto replicas = executor.replicate(*scheduled);
    std::vector<float> losses(2);
    std::vector<GradResult> results(2);
    executor.run(replicas, [&](int rank, nn::Module& m, ProcessGroup&) {
        AutogradEngine engine;
        results[rank] = engine.run(m, {ids, targets});
        losses[rank] = results[rank].outputs[0].at(0);
    });

    EXPECT_NEAR(losses[0], ref.outputs[0].at(0), 1e-3f);
    EXPECT_NEAR(losses[1], ref.outputs[0].at(0), 1e-3f);

    // Check one sharded gradient: fc2 (row-parallel) of layer 0.
    auto ref_fc2 = reference->findByPath("model.encoder.layer.0.ffn.fc2");
    Tensor dense_grad =
        AutogradEngine::gradFor(ref, ref_fc2->paramTensor("weight"));
    auto rank0_fc2 =
        replicas[0]->findByPath("model.encoder.layer.0.ffn.fc2");
    Tensor shard_grad =
        AutogradEngine::gradFor(results[0], rank0_fc2->paramTensor("weight"));
    Tensor expected_slice = ops::narrow(dense_grad, 1, 0, dense_grad.size(1) / 2);
    EXPECT_TRUE(Tensor::allClose(expected_slice, shard_grad, 1e-3f));
}

TEST(DistExecutor, VocabParallelHeadMatchesDense)
{
    // A padded, column-sharded LM head (vocab 63, world 2 -> padded 64)
    // must produce exactly the dense head's logits on every rank.
    nn::Linear dense(8, 63, /*bias=*/true);
    dense.initializeParams(171);
    auto head = nn::VocabParallelLinear::fromLinear(dense, 2);

    Tensor x = Tensor::uniform({3, 8}, 1.0f, 173);
    std::vector<nn::Value> vx = {nn::Value(x)};
    Tensor expected = dense.callOne(vx).tensor();

    // Un-sharded (reference mode): padding is transparent.
    Tensor single = head->callOne(vx).tensor();
    EXPECT_EQ(single.shape(), (Shape{3, 63}));
    EXPECT_TRUE(Tensor::allClose(expected, single, 1e-4f));

    // Sharded across two ranks.
    DistExecutor executor(2);
    auto outputs = executor.forward(*head, {x});
    for (int r = 0; r < 2; ++r) {
        EXPECT_EQ(outputs[r][0].shape(), (Shape{3, 63}));
        EXPECT_TRUE(Tensor::allClose(expected, outputs[r][0], 1e-4f));
    }
}

TEST(Autograd, VocabParallelHeadGradientsMatchDense)
{
    auto make = [](nn::ModulePtr head) {
        auto seq = std::make_shared<nn::Sequential>();
        seq->append(std::move(head));
        return withCrossEntropyLoss(seq);
    };
    nn::Linear proto(8, 63, true);
    proto.initializeParams(181);
    auto dense_head = std::static_pointer_cast<nn::Linear>(proto.clone());
    auto parallel_head = nn::VocabParallelLinear::fromLinear(proto, 2);

    auto dense_model = make(dense_head);
    auto parallel_model = make(parallel_head);

    Tensor x = Tensor::uniform({4, 8}, 1.0f, 183);
    Tensor targets = Tensor::randint({4}, 63, 185);

    AutogradEngine e1;
    GradResult dense_result = e1.run(*dense_model, {x, targets});

    DistExecutor executor(2);
    auto replicas = executor.replicate(*parallel_model);
    std::vector<GradResult> results(2);
    executor.run(replicas, [&](int rank, nn::Module& m, ProcessGroup&) {
        AutogradEngine engine;
        results[rank] = engine.run(m, {x, targets});
    });
    EXPECT_NEAR(dense_result.outputs[0].at(0), results[0].outputs[0].at(0),
                1e-4f);
    // Rank 0's weight-shard gradient equals the top half of the dense
    // gradient (padded row 63 contributes nothing).
    Tensor dense_grad = AutogradEngine::gradFor(
        dense_result, dense_model->findByPath("model.0")->paramTensor("weight"));
    Tensor shard_grad = AutogradEngine::gradFor(
        results[0], replicas[0]->findByPath("model.0")->paramTensor("weight"));
    EXPECT_EQ(shard_grad.shape(), (Shape{32, 8}));
    Tensor expected_slice = ops::narrow(dense_grad, 0, 0, 32);
    EXPECT_TRUE(Tensor::allClose(expected_slice, shard_grad, 1e-4f));
}

// --- trainers -------------------------------------------------------------------

TEST(Trainer, GradientAccumulationAveragesMicroBatches)
{
    auto model = withCrossEntropyLoss(models::buildTinyModel("bert"));
    model->initializeParams(101);
    Trainer trainer(model);

    std::vector<std::vector<Tensor>> micros;
    for (int m = 0; m < 3; ++m) {
        micros.push_back({Tensor::randint({1, 8}, 64, 110 + m),
                          Tensor::randint({1, 8}, 64, 120 + m)});
    }
    TrainStepStats first = trainer.step(micros);
    EXPECT_EQ(first.micro_batches, 3);
    EXPECT_GT(first.loss, 0);
    // Training progresses across steps on the same data.
    TrainStepStats later = first;
    for (int s = 0; s < 5; ++s) {
        later = trainer.step(micros);
    }
    EXPECT_LT(later.loss, first.loss);
}

TEST(Trainer, LearnsSyntheticMlmTask)
{
    // End-to-end integration: a *scheduled* BERT trained on the MLM
    // workload generator must reduce its loss on fresh batches.
    auto inner = models::buildTinyModel("bert");
    auto sch = baselines::applyRecipe(
        inner, baselines::ScheduleRecipe::kernelOptimized());
    (void)sch; // schedule applied in place
    auto model = withCrossEntropyLoss(inner);
    model->initializeParams(161);

    AdamWConfig config;
    config.lr = 1e-2f;
    Trainer trainer(model, config);
    models::SyntheticDataset data("MLM", 64, 8, 3);

    double first_window = 0;
    double last_window = 0;
    const int steps = 12;
    for (int s = 0; s < steps; ++s) {
        models::Batch batch = data.batch(2, s % 4); // cycle 4 batches
        TrainStepStats stats = trainer.step({batch.withTargets()});
        if (s < 3) first_window += stats.loss;
        if (s >= steps - 3) last_window += stats.loss;
    }
    EXPECT_LT(last_window, first_window);
}

TEST(Trainer, RejectsMetaParameters)
{
    auto model = withCrossEntropyLoss(models::buildTinyModel("bert"));
    EXPECT_THROW(Trainer trainer(model), SlapoError);
}

TEST(DataParallelTrainer, MatchesSingleProcessAccumulation)
{
    // DP over 2 ranks with per-rank micro-batches must produce exactly
    // the same parameters as one process accumulating both micro-batches.
    auto build = [] {
        auto m = withCrossEntropyLoss(models::buildTinyModel("bert"));
        m->initializeParams(131);
        return m;
    };
    auto reference_model = build();
    auto dp_model = build();

    AdamWConfig config;
    config.lr = 1e-2f;
    Trainer reference(reference_model, config);
    DataParallelTrainer dp(*dp_model, 2, config);

    std::vector<std::vector<Tensor>> micros = {
        {Tensor::randint({1, 8}, 64, 141), Tensor::randint({1, 8}, 64, 142)},
        {Tensor::randint({1, 8}, 64, 143), Tensor::randint({1, 8}, 64, 144)},
    };
    for (int s = 0; s < 3; ++s) {
        TrainStepStats ref_stats = reference.step(micros);
        TrainStepStats dp_stats = dp.step(micros);
        EXPECT_NEAR(ref_stats.loss, dp_stats.loss, 1e-5);
    }
    // Replicas stayed synchronized and match the single-process weights.
    auto ref_params = reference_model->namedParams();
    for (int rank = 0; rank < 2; ++rank) {
        auto rank_params = dp.replica(rank).namedParams();
        ASSERT_EQ(rank_params.size(), ref_params.size());
        for (size_t i = 0; i < ref_params.size(); ++i) {
            EXPECT_TRUE(Tensor::allClose(*ref_params[i].second,
                                         *rank_params[i].second, 1e-4f))
                << "rank " << rank << " param " << ref_params[i].first;
        }
    }
}

TEST(DataParallelTrainer, RejectsTensorParallelShards)
{
    auto model = models::buildTinyModel("bert");
    model->initializeParams(151);
    auto sch = baselines::applyRecipe(
        model, baselines::ScheduleRecipe::tensorParallel(2, 0.0));
    auto loss_model = withCrossEntropyLoss(sch->module());
    EXPECT_THROW(DataParallelTrainer trainer(*loss_model, 2), SlapoError);
}

} // namespace
} // namespace runtime
} // namespace slapo
