/** @file Tests of the module system, tracer, interpreter, and profiler. */
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "nn/interpreter.h"
#include "nn/layers.h"
#include "nn/tracer.h"

namespace slapo {
namespace nn {
namespace {

std::vector<Tensor>
runEager(Module& m, const std::vector<Tensor>& inputs)
{
    std::vector<Value> values;
    for (const Tensor& t : inputs) values.emplace_back(t);
    std::vector<Tensor> out;
    for (Value& v : m.call(values)) out.push_back(v.tensor());
    return out;
}

TEST(Module, ParamRegistrationAndLookup)
{
    Linear lin(4, 8);
    EXPECT_TRUE(lin.hasParam("weight"));
    EXPECT_TRUE(lin.hasParam("bias"));
    EXPECT_EQ(lin.paramTensor("weight").shape(), (Shape{8, 4}));
    EXPECT_THROW(lin.paramTensor("nope"), SlapoError);
    EXPECT_EQ(lin.numParams(), 8 * 4 + 8);
}

TEST(Module, MetaParamsUntilInitialized)
{
    Linear lin(4, 4);
    EXPECT_TRUE(lin.paramTensor("weight").isMeta());
    lin.initializeParams(1);
    EXPECT_TRUE(lin.paramTensor("weight").materialized());
}

TEST(Module, LayerNormGammaInitializedToOne)
{
    LayerNorm ln(8);
    ln.initializeParams(3);
    EXPECT_FLOAT_EQ(ln.paramTensor("gamma").at(0), 1.0f);
    EXPECT_FLOAT_EQ(ln.paramTensor("gamma").at(7), 1.0f);
}

TEST(Module, FindByPathNavigatesHierarchy)
{
    SelfAttention attn(8, 2, 0.0, false);
    EXPECT_EQ(attn.findByPath("query")->typeName(), "Linear");
    EXPECT_EQ(attn.findByPath("core")->typeName(), "CoreAttention");
    EXPECT_THROW(attn.findByPath("bogus"), SlapoError);
}

TEST(Module, NamedModulesPreOrder)
{
    FFN ffn(8, 16, 0.0);
    auto mods = ffn.namedModules();
    ASSERT_GE(mods.size(), 5u);
    EXPECT_EQ(mods[0].first, "");
    EXPECT_EQ(mods[1].first, "fc1");
}

TEST(Module, CloneIsDeepAndIndependent)
{
    Linear lin(3, 3);
    lin.initializeParams(5);
    ModulePtr copy = lin.clone();
    copy->paramTensor("weight").fill_(0.0f);
    EXPECT_NE(lin.paramTensor("weight").at(0), 0.0f);
}

TEST(Module, MetaForwardPropagatesShapes)
{
    Linear lin(4, 8); // params stay meta
    std::vector<Value> out = lin.call({Value(Tensor::meta({2, 4}))});
    EXPECT_EQ(out[0].shape(), (Shape{2, 8}));
    EXPECT_TRUE(out[0].tensor().isMeta());
}

TEST(Layers, LinearForwardNumeric)
{
    Linear lin(2, 2, /*bias=*/true);
    lin.setParamTensor("weight", Tensor::fromValues({2, 2}, {1, 0, 0, 1}));
    lin.setParamTensor("bias", Tensor::fromValues({2}, {1, 1}));
    auto out = runEager(lin, {Tensor::fromValues({1, 2}, {3, 4})});
    EXPECT_FLOAT_EQ(out[0].at(0), 4);
    EXPECT_FLOAT_EQ(out[0].at(1), 5);
}

TEST(Layers, SequentialChains)
{
    auto seq = std::make_shared<Sequential>();
    seq->append(std::make_shared<Linear>(4, 8));
    seq->append(std::make_shared<Activation>(Activation::Kind::Relu));
    seq->append(std::make_shared<Linear>(8, 2));
    seq->initializeParams(7);
    auto out = runEager(*seq, {Tensor::uniform({3, 4}, 1.0f, 9)});
    EXPECT_EQ(out[0].shape(), (Shape{3, 2}));
}

TEST(Layers, SelfAttentionShapes)
{
    SelfAttention attn(8, 2, 0.0, false);
    attn.initializeParams(11);
    auto out = runEager(attn, {Tensor::uniform({2, 5, 8}, 0.5f, 13)});
    EXPECT_EQ(out[0].shape(), (Shape{2, 5, 8}));
}

TEST(Layers, CausalAttentionIgnoresFuture)
{
    // With causal masking, output at position 0 must not change when
    // later positions change.
    SelfAttention attn(4, 1, 0.0, /*causal=*/true);
    attn.initializeParams(17);
    Tensor x1 = Tensor::uniform({1, 3, 4}, 0.5f, 19);
    Tensor x2 = x1.clone();
    x2.set(2 * 4 + 1, 9.0f); // perturb position 2
    auto o1 = runEager(attn, {x1});
    auto o2 = runEager(attn, {x2});
    for (int64_t i = 0; i < 4; ++i) {
        EXPECT_NEAR(o1[0].at(i), o2[0].at(i), 1e-5f);
    }
}

TEST(Layers, FusedSelfAttentionMatchesUnfused)
{
    SelfAttention attn(8, 2, 0.0, false);
    attn.initializeParams(23);
    ModulePtr fused = FusedSelfAttention::fromSelfAttention(attn);
    Tensor x = Tensor::uniform({2, 4, 8}, 0.5f, 29);
    auto expected = runEager(attn, {x});
    auto actual = runEager(*fused, {x});
    EXPECT_TRUE(Tensor::allClose(expected[0], actual[0], 1e-4f));
}

TEST(Layers, EfficientAttentionMatchesCore)
{
    CoreAttention core(4, 0.0, false);
    ModulePtr eff = EfficientAttention::fromCore(core);
    Tensor q = Tensor::uniform({1, 3, 8}, 0.5f, 31);
    Tensor k = Tensor::uniform({1, 3, 8}, 0.5f, 32);
    Tensor v = Tensor::uniform({1, 3, 8}, 0.5f, 33);
    auto expected = runEager(core, {q, k, v});
    auto actual = runEager(*eff, {q, k, v});
    EXPECT_TRUE(Tensor::allClose(expected[0], actual[0], 1e-5f));
}

TEST(Layers, ProjectionAddsResidualAndNormalizes)
{
    Projection proj(4, 0.0);
    proj.initializeParams(37);
    Tensor ctx = Tensor::uniform({1, 2, 4}, 0.5f, 38);
    Tensor res = Tensor::uniform({1, 2, 4}, 0.5f, 39);
    auto out = runEager(proj, {ctx, res});
    EXPECT_EQ(out[0].shape(), (Shape{1, 2, 4}));
}

TEST(Layers, DropoutSeedSurvivesClone)
{
    Dropout d(0.5);
    auto c = std::static_pointer_cast<Dropout>(d.clone());
    EXPECT_EQ(d.seed(), c->seed());
}

// --- tracing -----------------------------------------------------------------

TEST(Tracer, DefaultTraceKeepsChildrenOpaque)
{
    FFN ffn(4, 8, 0.1);
    auto g = traceModule(ffn, {{2, 3, 4}});
    int call_modules = 0;
    int call_ops = 0;
    for (auto* n : g->nodes()) {
        if (n->kind() == graph::NodeKind::CallModule) ++call_modules;
        if (n->kind() == graph::NodeKind::CallOp) ++call_ops;
    }
    // fc1, act, fc2, dropout, norm stay opaque; only the residual add is
    // captured as an op.
    EXPECT_EQ(call_modules, 5);
    EXPECT_EQ(call_ops, 1);
    EXPECT_EQ(g->outputNode()->shape(), (Shape{2, 3, 4}));
}

TEST(Tracer, FlattenInlinesToOps)
{
    FFN ffn(4, 8, 0.1);
    TraceOptions options;
    options.flatten = true;
    auto g = traceModule(ffn, {{2, 3, 4}}, options);
    // Linear / LayerNorm remain framework leaves; GELU and Dropout inline.
    int gelu = 0;
    int dropout = 0;
    int linear_mods = 0;
    for (auto* n : g->nodes()) {
        if (n->kind() == graph::NodeKind::CallOp) {
            if (n->op() == graph::OpKind::Gelu) ++gelu;
            if (n->op() == graph::OpKind::Dropout) ++dropout;
        }
        if (n->kind() == graph::NodeKind::CallModule &&
            n->attrStr("type") == "Linear") {
            ++linear_mods;
        }
    }
    EXPECT_EQ(gelu, 1);
    EXPECT_EQ(dropout, 1);
    EXPECT_EQ(linear_mods, 2);
}

TEST(Tracer, DecomposedLinearSplitsBias)
{
    FFN ffn(4, 8, 0.0);
    ffn.child("fc1")->meta().decomposed = true;
    TraceOptions options;
    options.flatten = true;
    auto g = traceModule(ffn, {{1, 2, 4}}, options);
    // The decomposed fc1 contributes a bias-less linear op + an add op.
    bool saw_linear_op = false;
    for (auto* n : g->nodes()) {
        if (n->kind() == graph::NodeKind::CallOp &&
            n->op() == graph::OpKind::LinearOp) {
            saw_linear_op = true;
            EXPECT_EQ(n->inputs().size(), 2u); // no bias input
        }
    }
    EXPECT_TRUE(saw_linear_op);
}

TEST(Tracer, UntraceableModuleRaises)
{
    FFN ffn(4, 8, 0.0);
    ffn.setTraceable(false);
    EXPECT_THROW(traceModule(ffn, {{1, 2, 4}}), SlapoError);
}

TEST(Tracer, UntraceableChildOkWhenLeaf)
{
    // "Trace by need": an untraceable child is fine as long as it stays a
    // CallModule leaf (default, non-flattened trace).
    auto seq = std::make_shared<Sequential>();
    auto ffn = std::make_shared<FFN>(4, 8, 0.0);
    ffn->setTraceable(false);
    seq->append(ffn);
    auto g = traceModule(*seq, {{1, 2, 4}});
    EXPECT_EQ(g->placeholders().size(), 1u);
    // Flatten now *does* need the child's forward: must throw.
    TraceOptions options;
    options.flatten = true;
    EXPECT_THROW(traceModule(*seq, {{1, 2, 4}}, options), SlapoError);
}

TEST(Tracer, LeafPathsExcludeFromFlatten)
{
    FFN ffn(4, 8, 0.1);
    TraceOptions options;
    options.flatten = true;
    options.leaf_paths = {"dropout"};
    auto g = traceModule(ffn, {{1, 2, 4}}, options);
    bool dropout_module = false;
    for (auto* n : g->nodes()) {
        if (n->kind() == graph::NodeKind::CallModule &&
            n->attrStr("type") == "Dropout") {
            dropout_module = true;
        }
    }
    EXPECT_TRUE(dropout_module);
}

TEST(Interpreter, TracedGraphMatchesEagerForward)
{
    FFN ffn(6, 12, 0.0);
    ffn.initializeParams(43);
    Tensor x = Tensor::uniform({2, 3, 6}, 0.5f, 47);
    auto expected = runEager(ffn, {x});

    ffn.meta().traced_graph = traceModule(ffn, {{2, 3, 6}});
    auto actual = runEager(ffn, {x}); // now replays the graph
    EXPECT_TRUE(Tensor::allClose(expected[0], actual[0], 1e-5f));
}

TEST(Interpreter, FlattenedGraphMatchesEagerForward)
{
    SelfAttention attn(8, 2, 0.0, true);
    attn.initializeParams(53);
    Tensor x = Tensor::uniform({1, 4, 8}, 0.5f, 59);
    auto expected = runEager(attn, {x});
    TraceOptions options;
    options.flatten = true;
    attn.meta().traced_graph = traceModule(attn, {{1, 4, 8}}, options);
    auto actual = runEager(attn, {x});
    EXPECT_TRUE(Tensor::allClose(expected[0], actual[0], 1e-5f));
}

// --- multi-output modules / TupleGet ------------------------------------------

namespace {

/** Splits its input into two halves along the last axis. */
class Splitter : public Module
{
  public:
    Splitter() : Module("Splitter") {}

    std::vector<Value>
    forward(const std::vector<Value>& inputs) override
    {
        const int64_t half = inputs[0].shape().back() / 2;
        return {F::narrow(inputs[0], -1, 0, half),
                F::narrow(inputs[0], -1, half, half)};
    }

    ModulePtr
    clone() const override
    {
        auto m = std::make_shared<Splitter>();
        cloneInto(m.get());
        return m;
    }
};

/** Uses a multi-output child: out = gelu(a) + b. */
class SplitUser : public Module
{
  public:
    SplitUser() : Module("SplitUser")
    {
        registerChild("split", std::make_shared<Splitter>());
    }

    std::vector<Value>
    forward(const std::vector<Value>& inputs) override
    {
        std::vector<Value> halves = callChild("split", {inputs[0]});
        return {F::add(F::gelu(halves[0]), halves[1])};
    }

    ModulePtr
    clone() const override
    {
        auto m = std::make_shared<SplitUser>();
        cloneInto(m.get());
        return m;
    }
};

} // namespace

TEST(Tracer, MultiOutputChildGetsTupleGetNodes)
{
    SplitUser model;
    auto g = traceModule(model, {{2, 8}});
    int tuple_gets = 0;
    for (auto* n : g->nodes()) {
        if (n->kind() == graph::NodeKind::TupleGet) ++tuple_gets;
        if (n->kind() == graph::NodeKind::CallModule) {
            EXPECT_EQ(n->numOutputs(), 2);
        }
    }
    EXPECT_EQ(tuple_gets, 2);
}

TEST(Interpreter, TupleGetRoutesCorrectHalves)
{
    SplitUser model;
    model.meta().traced_graph = traceModule(model, {{2, 8}});
    Tensor x = Tensor::uniform({2, 8}, 1.0f, 91);
    Tensor via_graph = model.callOne({Value(x)}).tensor();
    // Reference without the graph.
    SplitUser fresh;
    Tensor direct = fresh.callOne({Value(x)}).tensor();
    EXPECT_TRUE(Tensor::allClose(via_graph, direct, 1e-6f));
}

// --- context guards --------------------------------------------------------------

TEST(Context, GuardsRestorePreviousState)
{
    EXPECT_EQ(TracingState::current(), nullptr);
    graph::Graph g1, g2;
    TracingState outer(&g1, {});
    {
        TracingGuard guard_outer(&outer);
        EXPECT_EQ(TracingState::current(), &outer);
        TracingState inner(&g2, {});
        {
            TracingGuard guard_inner(&inner);
            EXPECT_EQ(TracingState::current(), &inner);
            {
                TracingGuard suspend(nullptr); // meta-propagation trick
                EXPECT_EQ(TracingState::current(), nullptr);
            }
            EXPECT_EQ(TracingState::current(), &inner);
        }
        EXPECT_EQ(TracingState::current(), &outer);
    }
    EXPECT_EQ(TracingState::current(), nullptr);
}

TEST(Context, DistContextIsPerThread)
{
    DistContext dc;
    dc.rank = 3;
    dc.world_size = 4;
    DistGuard guard(&dc);
    EXPECT_EQ(DistContext::current()->rank, 3);
    std::thread other([] { EXPECT_EQ(DistContext::current(), nullptr); });
    other.join();
}

TEST(Context, TracingPathTracksModuleStack)
{
    graph::Graph g;
    TracingState state(&g, {});
    EXPECT_EQ(state.currentPath(), "");
    state.pushModule("encoder");
    state.pushModule("layer");
    EXPECT_EQ(state.currentPath(), "encoder.layer");
    state.popModule();
    EXPECT_EQ(state.currentPath(), "encoder");
}

// --- profiler ------------------------------------------------------------------

TEST(Profiler, CountsKernelsAndFlops)
{
    Linear lin(4, 8);
    Profiler profiler(2.0);
    {
        ProfilerGuard guard(&profiler);
        runEager(lin, {Tensor::meta({2, 4})});
    }
    const Profile& p = profiler.profile();
    ASSERT_EQ(p.kernels.size(), 1u);
    EXPECT_DOUBLE_EQ(p.kernels[0].flops, 2.0 * 2 * 4 * 8 + 2 * 8);
    EXPECT_DOUBLE_EQ(p.kernels[0].bytes_out, 2 * 8 * 2.0);
}

TEST(Profiler, EfficientKernelCollapsesToOneLaunch)
{
    CoreAttention core(4, 0.0, false);
    auto eff = EfficientAttention::fromCore(core);
    Tensor q = Tensor::meta({1, 8, 8});

    Profiler p_core(2.0);
    {
        ProfilerGuard guard(&p_core);
        core.call({Value(q), Value(q), Value(q)});
    }
    Profiler p_eff(2.0);
    {
        ProfilerGuard guard(&p_eff);
        eff->call({Value(q), Value(q), Value(q)});
    }
    EXPECT_GT(p_core.profile().kernels.size(), 3u);
    EXPECT_EQ(p_eff.profile().kernels.size(), 1u);
    // Same math: FLOPs agree.
    EXPECT_NEAR(p_core.profile().totalFlops(), p_eff.profile().totalFlops(),
                1.0);
    // Flash attention's activation footprint excludes the S x S tensors.
    EXPECT_LT(p_eff.profile().totalActivationBytes(),
              p_core.profile().totalActivationBytes());
}

TEST(Profiler, CheckpointScopeMarksKernels)
{
    FFN ffn(4, 8, 0.0);
    ffn.meta().checkpointed = true;
    Profiler profiler(2.0);
    {
        ProfilerGuard guard(&profiler);
        ffn.call({Value(Tensor::meta({1, 2, 4}))});
    }
    for (const auto& k : profiler.profile().kernels) {
        EXPECT_TRUE(k.checkpointed);
    }
}

TEST(Profiler, ShardedModuleRecordsComm)
{
    Linear lin(8, 8);
    ShardSpec spec;
    spec.axis = 1;
    spec.world_size = 2;
    lin.meta().sharded_params["weight"] = spec;
    // Rank-local view: the executor narrows the weight to (8, 4).
    lin.setParamTensor("weight", Tensor::meta({8, 4}));
    SyncSpec sync;
    sync.direction = SyncDirection::Both;
    lin.meta().syncs.push_back(sync);

    DistContext dc;
    dc.rank = 0;
    dc.world_size = 2;
    Profiler profiler(2.0);
    {
        DistGuard dist(&dc);
        ProfilerGuard guard(&profiler);
        lin.call({Value(Tensor::meta({2, 4}))}); // sharded input features
    }
    const Profile& p = profiler.profile();
    ASSERT_EQ(p.comms.size(), 2u); // forward + backward all-reduce
    EXPECT_EQ(p.comms[0].kind, "all_reduce");
    EXPECT_FALSE(p.comms[0].backward);
    EXPECT_TRUE(p.comms[1].backward);
}

} // namespace
} // namespace nn
} // namespace slapo
