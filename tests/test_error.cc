/** @file Tests of support/error: message formatting, the typed error
 * hierarchy (CollectiveError / CheckpointError / failpoint errors), and
 * exception propagation out of pool workers and rank threads. */
#include <gtest/gtest.h>

#include <atomic>

#include "nn/layers.h"
#include "runtime/dist_executor.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/parallel.h"
#include "tensor/tensor.h"

namespace slapo {
namespace {

TEST(Error, CheckComposesStreamedMessage)
{
    try {
        SLAPO_CHECK(false, "bad axis " << 3 << " for shape "
                                       << shapeToString({2, 4}));
        FAIL() << "SLAPO_CHECK(false) did not throw";
    } catch (const SlapoError& e) {
        EXPECT_STREQ(e.what(), "bad axis 3 for shape [2, 4]");
    }
}

TEST(Error, CheckTrueDoesNotThrow)
{
    EXPECT_NO_THROW(SLAPO_CHECK(1 + 1 == 2, "unreachable"));
}

TEST(Error, ThrowMacroAlwaysThrows)
{
    EXPECT_THROW(SLAPO_THROW("x = " << 42), SlapoError);
}

TEST(Error, CollectiveErrorCarriesOriginAndFormatsIt)
{
    CollectiveError e("pg.allreduce", 2, 17, "rank 2 timed out");
    EXPECT_EQ(e.site(), "pg.allreduce");
    EXPECT_EQ(e.rank(), 2);
    EXPECT_EQ(e.generation(), 17);
    const std::string what = e.what();
    EXPECT_NE(what.find("pg.allreduce"), std::string::npos);
    EXPECT_NE(what.find("origin rank 2"), std::string::npos);
    EXPECT_NE(what.find("generation 17"), std::string::npos);
    EXPECT_NE(what.find("timed out"), std::string::npos);
}

TEST(Error, CheckpointErrorCarriesPath)
{
    CheckpointError e("/tmp/ckpt-000003.slpc", "CRC mismatch in tensor 'w'");
    EXPECT_EQ(e.path(), "/tmp/ckpt-000003.slpc");
    EXPECT_NE(std::string(e.what()).find("CRC mismatch"), std::string::npos);
}

TEST(Error, TypedErrorsNestUnderSlapoError)
{
    // Recovery code catches SlapoError to handle any runtime failure;
    // the typed subclasses must stay inside that hierarchy.
    try {
        throw CollectiveError("pg.barrier", 0, 1, "aborted");
    } catch (const SlapoError& e) {
        EXPECT_NE(std::string(e.what()).find("pg.barrier"),
                  std::string::npos);
    } catch (...) {
        FAIL() << "CollectiveError not caught as SlapoError";
    }
    EXPECT_THROW(
        throw support::failpoint::FailpointError("trainer.step", 0, 5),
        SlapoError);
    EXPECT_THROW(
        throw support::failpoint::RankKilledError("pg.allreduce", 1, 3),
        SlapoError);
}

TEST(Error, PropagatesOutOfPoolWorkers)
{
    // parallelFor rethrows the first chunk exception on the caller; the
    // remaining chunks are cancelled but the pool survives.
    std::atomic<int> executed{0};
    auto run = [&] {
        support::parallelFor(0, 1000, 10, [&](int64_t lo, int64_t) {
            executed.fetch_add(1);
            if (lo >= 500) {
                SLAPO_THROW("injected in chunk at " << lo);
            }
        });
    };
    EXPECT_THROW(run(), SlapoError);
    EXPECT_GT(executed.load(), 0);
    // The pool is still usable after the failure.
    std::atomic<int64_t> sum{0};
    support::parallelFor(0, 100, 10, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
    });
    EXPECT_EQ(sum.load(), 4950);
}

TEST(Error, PropagatesOutOfRankThreads)
{
    // A throwing rank body must surface on the launching thread with the
    // original message, and the executor must stay usable afterwards.
    runtime::DistExecutor executor(2);
    std::vector<nn::ModulePtr> replicas = {
        std::make_shared<nn::Sequential>(), std::make_shared<nn::Sequential>()};
    try {
        executor.run(replicas, [](int rank, nn::Module&,
                                  runtime::ProcessGroup&) {
            if (rank == 1) {
                SLAPO_THROW("rank " << rank << " exploded");
            }
        });
        FAIL() << "rank exception did not propagate";
    } catch (const SlapoError& e) {
        EXPECT_STREQ(e.what(), "rank 1 exploded");
    }
    // Group was reset; a follow-up collective run succeeds.
    std::vector<float> sums(2);
    executor.run(replicas,
                 [&](int rank, nn::Module&, runtime::ProcessGroup& group) {
                     Tensor t = Tensor::full({1}, static_cast<float>(rank + 1));
                     sums[rank] = group.allReduce(rank, t).at(0);
                 });
    EXPECT_FLOAT_EQ(sums[0], 3.0f);
    EXPECT_FLOAT_EQ(sums[1], 3.0f);
}

TEST(Error, AssertMacroPassesQuietly)
{
    // The failing branch aborts the process (by design), so only the
    // passing branch is testable.
    EXPECT_NO_THROW(SLAPO_ASSERT(2 * 2 == 4, "arithmetic holds"));
}

} // namespace
} // namespace slapo
