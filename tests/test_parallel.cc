/**
 * @file
 * Tests of the parallel blocked kernel backend: the thread pool itself
 * (partitioning, exception propagation) and the determinism contract —
 * every kernel must produce bit-identical results at any thread count,
 * because chunk boundaries are a function of the problem shape only.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "models/registry.h"
#include "nn/layers.h"
#include "runtime/trainer.h"
#include "support/parallel.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace slapo {
namespace {

/** Restore the default thread count even when a test fails mid-way. */
struct ThreadGuard
{
    ~ThreadGuard() { setNumThreads(0); }
};

float
maxAbsDiff(const Tensor& a, const Tensor& b)
{
    EXPECT_EQ(a.shape(), b.shape());
    float worst = 0.0f;
    const float* pa = a.data();
    const float* pb = b.data();
    for (int64_t i = 0; i < a.numel(); ++i) {
        worst = std::max(worst, std::abs(pa[i] - pb[i]));
    }
    return worst;
}

TEST(ParallelFor, CoversRangeExactlyOnce)
{
    ThreadGuard guard;
    for (int threads : {1, 3}) {
        setNumThreads(threads);
        std::vector<std::atomic<int>> hits(1000);
        support::parallelFor(0, 1000, 64, [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
                hits[i].fetch_add(1);
            }
        });
        for (int64_t i = 0; i < 1000; ++i) {
            ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at "
                                         << threads << " threads";
        }
    }
}

TEST(ParallelFor, ChunkBoundariesIgnoreThreadCount)
{
    // The determinism contract: chunking is (begin, end, grain) only.
    EXPECT_EQ(support::chunkCountFor(0, 1000, 64), (1000 + 63) / 64);
    EXPECT_EQ(support::chunkCountFor(0, 0, 64), 0);
    EXPECT_EQ(support::chunkCountFor(5, 6, 64), 1);
}

TEST(ParallelFor, PropagatesExceptions)
{
    ThreadGuard guard;
    for (int threads : {1, 4}) {
        setNumThreads(threads);
        EXPECT_THROW(
            support::parallelFor(0, 256, 1,
                                 [&](int64_t lo, int64_t) {
                                     if (lo >= 128) {
                                         throw std::runtime_error("boom");
                                     }
                                 }),
            std::runtime_error);
        // The pool must stay usable after an exception.
        std::atomic<int64_t> sum{0};
        support::parallelFor(0, 100, 10, [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
                sum.fetch_add(i);
            }
        });
        EXPECT_EQ(sum.load(), 99 * 100 / 2);
    }
}

TEST(ParallelFor, NestedCallsRunInline)
{
    ThreadGuard guard;
    setNumThreads(4);
    std::atomic<int> outer_chunks{0};
    support::parallelFor(0, 8, 1, [&](int64_t, int64_t) {
        outer_chunks.fetch_add(1);
        EXPECT_TRUE(support::inParallelRegion());
        // A kernel calling a kernel must not deadlock the pool.
        std::atomic<int64_t> inner_sum{0};
        support::parallelFor(0, 16, 4, [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
                inner_sum.fetch_add(i);
            }
        });
        EXPECT_EQ(inner_sum.load(), 15 * 16 / 2);
    });
    EXPECT_EQ(outer_chunks.load(), 8);
    EXPECT_FALSE(support::inParallelRegion());
}

TEST(ParallelThreads, SetAndGet)
{
    ThreadGuard guard;
    setNumThreads(7);
    EXPECT_EQ(getNumThreads(), 7);
    setNumThreads(0);
    EXPECT_GE(getNumThreads(), 1);
}

/** Run `fn` at 1/2/7 threads and require bit-identical outputs. */
void
expectBitIdentical(const std::function<std::vector<Tensor>()>& fn)
{
    ThreadGuard guard;
    setNumThreads(1);
    std::vector<Tensor> reference = fn();
    for (int threads : {2, 7}) {
        setNumThreads(threads);
        std::vector<Tensor> got = fn();
        ASSERT_EQ(got.size(), reference.size());
        for (size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(maxAbsDiff(reference[i], got[i]), 0.0f)
                << "output " << i << " at " << threads << " threads";
        }
    }
}

TEST(ParallelDeterminism, Matmul)
{
    Tensor a = Tensor::uniform({3, 37, 53}, 1.0f, 1);
    Tensor b = Tensor::uniform({3, 53, 41}, 1.0f, 2);
    expectBitIdentical([&] {
        return std::vector<Tensor>{ops::matmul(a, b)};
    });
}

TEST(ParallelDeterminism, LinearForwardBackward)
{
    Tensor x = Tensor::uniform({2, 19, 64}, 1.0f, 3);
    Tensor w = Tensor::uniform({48, 64}, 0.2f, 4);
    Tensor bias = Tensor::uniform({48}, 0.2f, 5);
    Tensor g = Tensor::uniform({2, 19, 48}, 1.0f, 6);
    expectBitIdentical([&] {
        Tensor y = ops::linear(x, w, bias);
        ops::LinearGrads grads = ops::linearBackward(g, x, w, true);
        return std::vector<Tensor>{y, grads.grad_x, grads.grad_weight,
                                   grads.grad_bias};
    });
}

TEST(ParallelDeterminism, SoftmaxForwardBackward)
{
    Tensor x = Tensor::uniform({4, 7, 33, 33}, 2.0f, 7);
    Tensor g = Tensor::uniform({4, 7, 33, 33}, 1.0f, 8);
    expectBitIdentical([&] {
        Tensor y = ops::softmax(x);
        return std::vector<Tensor>{y, ops::softmaxBackward(g, y)};
    });
}

TEST(ParallelDeterminism, LayerNormForwardBackward)
{
    Tensor x = Tensor::uniform({31, 257}, 1.0f, 9);
    Tensor gamma = Tensor::uniform({257}, 0.5f, 10);
    Tensor beta = Tensor::uniform({257}, 0.5f, 11);
    Tensor g = Tensor::uniform({31, 257}, 1.0f, 12);
    expectBitIdentical([&] {
        Tensor y = ops::layerNorm(x, gamma, beta, 1e-5f);
        ops::LayerNormGrads grads =
            ops::layerNormBackward(g, x, gamma, 1e-5f);
        return std::vector<Tensor>{y, grads.grad_x, grads.grad_gamma,
                                   grads.grad_beta};
    });
}

TEST(ParallelDeterminism, ElementwiseAndReduce)
{
    Tensor a = Tensor::uniform({5, 64, 33}, 1.0f, 13);
    Tensor b = Tensor::uniform({5, 64, 33}, 1.0f, 14);
    Tensor row = Tensor::uniform({33}, 1.0f, 15);
    expectBitIdentical([&] {
        return std::vector<Tensor>{
            ops::add(a, b),
            ops::mul(a, row),
            ops::gelu(a),
            ops::reduceToShape(a, {33}),
            ops::reduceToShape(a, {5, 64, 1}),
        };
    });
}

TEST(BroadcastPaths, FastPathMatchesStridedPath)
{
    // The same-shape fast path and the generic strided walk must agree
    // bit-for-bit: materialize the broadcast operand and compare.
    Tensor a = Tensor::uniform({6, 32, 17}, 1.0f, 16);
    Tensor row = Tensor::uniform({17}, 1.0f, 17);
    Tensor tiled = Tensor::zeros({6, 32, 17});
    float* pt = tiled.data();
    const float* pr = row.data();
    for (int64_t i = 0; i < tiled.numel(); ++i) {
        pt[i] = pr[i % 17];
    }
    EXPECT_EQ(maxAbsDiff(ops::add(a, row), ops::add(a, tiled)), 0.0f);
    EXPECT_EQ(maxAbsDiff(ops::mul(a, row), ops::mul(a, tiled)), 0.0f);
}

TEST(BroadcastPaths, ScalarOperandMatchesStridedPath)
{
    Tensor a = Tensor::uniform({4, 9, 13}, 1.0f, 18);
    Tensor scalar = Tensor::full({1}, 1.375f);
    Tensor tiled = Tensor::full({4, 9, 13}, 1.375f);
    EXPECT_EQ(maxAbsDiff(ops::add(a, scalar), ops::add(a, tiled)), 0.0f);
    EXPECT_EQ(maxAbsDiff(ops::sub(scalar, a), ops::sub(tiled, a)), 0.0f);
}

TEST(AccumulationPrecision, LinearMatchesMatmulComposition)
{
    // Satellite check for the unified float accumulation: the fused
    // linear and the composed matmul(x, W^T)+b run through the same
    // blocked microkernel and must agree to float tolerance.
    Tensor x = Tensor::uniform({8, 96, 128}, 1.0f, 19);
    Tensor w = Tensor::uniform({64, 128}, 0.1f, 20);
    Tensor bias = Tensor::uniform({64}, 0.1f, 21);
    Tensor fused = ops::linear(x, w, bias);
    Tensor composed =
        ops::add(ops::matmul(x, ops::transposeLast2(w)), bias);
    EXPECT_LE(maxAbsDiff(fused, composed), 1e-5f);
}

TEST(ParallelDeterminism, GlobalGradNormBitwiseStableAcrossThreadCounts)
{
    // The run log's global grad norm (TrainStepStats::grad_norm) is a
    // sequential double accumulation over the averaged gradients, so the
    // determinism contract extends to it: bit-identical at any kernel
    // thread count. A fresh model per run — stepping mutates parameters.
    ThreadGuard guard;
    auto run_one_step = [] {
        auto model =
            runtime::withCrossEntropyLoss(models::buildTinyModel("bert"));
        model->initializeParams(42);
        runtime::Trainer trainer(model);
        const std::vector<std::vector<Tensor>> micros = {
            {Tensor::randint({2, 8}, 64, 100),
             Tensor::randint({2, 8}, 64, 200)},
            {Tensor::randint({2, 8}, 64, 300),
             Tensor::randint({2, 8}, 64, 400)},
        };
        return trainer.step(micros).grad_norm;
    };
    setNumThreads(1);
    const double reference = run_one_step();
    EXPECT_TRUE(std::isfinite(reference));
    EXPECT_GT(reference, 0.0);
    for (int threads : {2, 7}) {
        setNumThreads(threads);
        const double got = run_one_step();
        EXPECT_EQ(std::memcmp(&reference, &got, sizeof(double)), 0)
            << "grad norm " << got << " != " << reference << " at "
            << threads << " threads";
    }
}

} // namespace
} // namespace slapo
