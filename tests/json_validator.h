/**
 * @file
 * Minimal JSON validator shared by the observability tests. Enough of
 * RFC 8259 to reject any structurally broken dump — objects, arrays,
 * strings with escapes, numbers, literals. The repo deliberately ships
 * no JSON parser; tests check emitted output with this instead.
 */
#pragma once

#include <cctype>
#include <cstring>
#include <string>

namespace slapo {
namespace testutil {

class JsonValidator
{
  public:
    explicit JsonValidator(const std::string& text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value()) {
            return false;
        }
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') { ++pos_; return true; }
        for (;;) {
            skipWs();
            if (!string()) return false;
            skipWs();
            if (peek() != ':') return false;
            ++pos_;
            skipWs();
            if (!value()) return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') { ++pos_; return true; }
        for (;;) {
            skipWs();
            if (!value()) return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"') return false;
        ++pos_;
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (static_cast<unsigned char>(c) < 0x20) return false;
            if (c == '"') { ++pos_; return true; }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size()) return false;
                const char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= s_.size() || !std::isxdigit(s_[pos_])) {
                            return false;
                        }
                    }
                } else if (std::string("\"\\/bfnrt").find(e) ==
                           std::string::npos) {
                    return false;
                }
            }
            ++pos_;
        }
        return false;
    }

    bool
    number()
    {
        const size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(s_[pos_]) || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
                s_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char* word)
    {
        const size_t len = std::strlen(word);
        if (s_.compare(pos_, len, word) != 0) return false;
        pos_ += len;
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                s_[pos_] == '\r')) {
            ++pos_;
        }
    }

    const std::string& s_;
    size_t pos_ = 0;
};

} // namespace testutil
} // namespace slapo
