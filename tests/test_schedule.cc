/** @file Tests of the schedule language: primitives, validation rules,
 * pipeline partitioning, and the verifier. */
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/schedule.h"
#include "core/verify.h"
#include "dialects/deepspeed_dialect.h"
#include "models/registry.h"

namespace slapo {
namespace core {
namespace {

using nn::ModulePtr;

ModulePtr
tinyBert()
{
    return models::buildTinyModel("bert");
}

std::vector<Tensor>
runModel(nn::Module& m, const std::vector<Tensor>& inputs)
{
    std::vector<nn::Value> values;
    for (const Tensor& t : inputs) values.emplace_back(t);
    std::vector<Tensor> out;
    for (nn::Value& v : m.call(values)) out.push_back(v.tensor());
    return out;
}

TEST(Schedule, CreateMirrorsHierarchy)
{
    auto sch = Schedule::create(tinyBert());
    EXPECT_EQ((*sch)["encoder.layer.0.attention.self"].module()->typeName(),
              "SelfAttention");
    EXPECT_EQ((*sch)["embeddings.word"].module()->typeName(), "Embedding");
    EXPECT_THROW((*sch)["encoder.nope"], SlapoError);
}

TEST(Schedule, PathsAreAbsolute)
{
    auto sch = Schedule::create(tinyBert());
    Schedule& attn = (*sch)["encoder.layer.1.attention"];
    EXPECT_EQ(attn.path(), "encoder.layer.1.attention");
    EXPECT_EQ(attn.parent()->path(), "encoder.layer.1");
}

TEST(Schedule, ReplaceSwapsModuleAndRebuildsTree)
{
    auto model = tinyBert();
    auto sch = Schedule::create(model);
    Schedule& self = (*sch)["encoder.layer.0.attention.self"];
    auto attn = std::static_pointer_cast<nn::SelfAttention>(self.module());
    self.replace(nn::FusedSelfAttention::fromSelfAttention(*attn));
    EXPECT_EQ((*sch)["encoder.layer.0.attention.self"].module()->typeName(),
              "FusedSelfAttention");
    // The model tree itself changed too.
    EXPECT_EQ(model->findByPath("encoder.layer.0.attention.self.qkv")
                  ->typeName(),
              "Linear");
}

TEST(Schedule, ReplaceRootRejected)
{
    auto sch = Schedule::create(tinyBert());
    EXPECT_THROW(sch->replace(tinyBert()), SlapoError);
}

TEST(Schedule, ShardRequiresDistributedWorld)
{
    auto sch = Schedule::create(tinyBert(), /*world_size=*/1);
    EXPECT_THROW((*sch)["pooler.dense"].shard("weight", 0), SlapoError);
}

TEST(Schedule, ShardValidatesAxisAndDivisibility)
{
    auto sch = Schedule::create(tinyBert(), 2);
    Schedule& dense = (*sch)["pooler.dense"];
    EXPECT_THROW(dense.shard("weight", 5), SlapoError);
    EXPECT_THROW(dense.shard("nope", 0), SlapoError);
    dense.shard("weight", 0); // hidden=16 divisible by 2
    EXPECT_EQ(dense.module()->meta().sharded_params.at("weight").axis, 0);
}

TEST(Schedule, SyncRequiresPriorShard)
{
    auto sch = Schedule::create(tinyBert(), 2);
    Schedule& dense = (*sch)["pooler.dense"];
    EXPECT_THROW(dense.sync(nn::SyncDirection::Forward), SlapoError);
    dense.shard("weight", 1);
    dense.sync(nn::SyncDirection::Forward);
    EXPECT_EQ(dense.module()->meta().syncs.size(), 1u);
}

TEST(Schedule, StaticPrimitivesRequireTrace)
{
    auto sch = Schedule::create(tinyBert());
    Schedule& ffn = (*sch)["encoder.layer.0.ffn"];
    EXPECT_THROW(ffn.find("gelu"), SlapoError);
    EXPECT_THROW(ffn.fuse({}, "TorchScript"), SlapoError);
    nn::TraceOptions options;
    options.flatten = true;
    ffn.trace({{1, 4, 16}}, options);
    EXPECT_TRUE(ffn.traced());
    EXPECT_FALSE(ffn.find("gelu").empty());
}

TEST(Schedule, FuseRejectsUnknownCompiler)
{
    auto sch = Schedule::create(tinyBert());
    Schedule& ffn = (*sch)["encoder.layer.0.ffn"];
    nn::TraceOptions options;
    options.flatten = true;
    ffn.trace({{1, 4, 16}}, options);
    auto matches = ffn.find(graph::Pattern::chain({"Linear", "gelu"}));
    ASSERT_FALSE(matches.empty());
    EXPECT_THROW(ffn.fuse(matches[0], "XLA"), SlapoError);
}

TEST(Schedule, CheckpointSetsFlag)
{
    auto sch = Schedule::create(tinyBert());
    (*sch)["encoder.layer.0"].checkpoint();
    EXPECT_TRUE((*sch)["encoder.layer.0"].module()->meta().checkpointed);
}

TEST(Schedule, FusedFfnStaysNumericallyCorrect)
{
    auto model = tinyBert();
    model->initializeParams(7);
    ModulePtr reference = model->clone();

    auto sch = Schedule::create(model);
    Schedule& ffn = (*sch)["encoder.layer.0.ffn"];
    ffn["fc1"].decompose();
    nn::TraceOptions options;
    options.flatten = true;
    ffn.trace({{2, 8, 16}}, options);
    auto matches = ffn.find(graph::Pattern::chain({"add", "gelu"}));
    ASSERT_EQ(matches.size(), 1u);
    ffn.fuse(matches[0]);

    VerifyOptions vopts;
    vopts.input_gen = [](int trial) {
        return std::vector<Tensor>{
            Tensor::randint({2, 8}, 64, 100 + trial)};
    };
    verifyEndToEnd(*reference, *sch, vopts);
}

TEST(Schedule, PartialReplaceViaSubgraph)
{
    auto model = tinyBert();
    model->initializeParams(11);
    ModulePtr reference = model->clone();

    auto sch = Schedule::create(model);
    Schedule& ffn = (*sch)["encoder.layer.1.ffn"];
    ffn["fc1"].decompose();
    nn::TraceOptions options;
    options.flatten = true;
    ffn.trace({{2, 8, 16}}, options);
    auto matches = ffn.find(graph::Pattern::chain({"add", "gelu"}));
    ASSERT_EQ(matches.size(), 1u);

    // Replace the bias+gelu subgraph with the hand-written fused kernel.
    Tensor bias = ffn.module()->findByPath("fc1")->paramTensor("bias");
    ffn.replace(std::make_shared<nn::FusedBiasGelu>(bias), matches[0]);

    VerifyOptions vopts;
    vopts.input_gen = [](int trial) {
        return std::vector<Tensor>{
            Tensor::randint({2, 8}, 64, 200 + trial)};
    };
    verifyEndToEnd(*reference, *sch, vopts);
}

TEST(Verifier, CatchesWrongReplacement)
{
    nn::Linear a(4, 4), b(4, 4);
    a.initializeParams(1);
    b.initializeParams(2); // different weights -> different function
    VerifyOptions vopts;
    vopts.input_shapes = {{2, 4}};
    EXPECT_THROW(verifyReplacement(a, b, vopts), SlapoError);
    // A module equals itself.
    verifyReplacement(a, a, vopts);
}

TEST(Verifier, ReplacementAcceptsEquivalentFusedAttention)
{
    nn::SelfAttention attn(16, 2, 0.0, false);
    attn.initializeParams(3);
    auto fused = nn::FusedSelfAttention::fromSelfAttention(attn);
    VerifyOptions vopts;
    vopts.input_shapes = {{2, 4, 16}};
    verifyReplacement(attn, *fused, vopts);
}

TEST(Verifier, ReplaceVerifiedGuardsTheSwap)
{
    auto model = tinyBert();
    model->initializeParams(221);
    auto sch = Schedule::create(model);
    Schedule& self = (*sch)["encoder.layer.0.attention.self"];
    auto attn = std::static_pointer_cast<nn::SelfAttention>(self.module());

    VerifyOptions vopts;
    vopts.input_shapes = {{2, 8, 16}};

    // A wrong replacement (fresh weights) is rejected and NOT installed.
    auto wrong = std::make_shared<nn::SelfAttention>(16, 2, 0.0, false);
    wrong->initializeParams(999);
    EXPECT_THROW(replaceVerified(self, wrong, vopts), SlapoError);
    EXPECT_EQ((*sch)["encoder.layer.0.attention.self"].module()->typeName(),
              "SelfAttention");

    // The weight-preserving fused replacement passes and lands.
    replaceVerified(self, nn::FusedSelfAttention::fromSelfAttention(*attn),
                    vopts);
    EXPECT_EQ((*sch)["encoder.layer.0.attention.self"].module()->typeName(),
              "FusedSelfAttention");
}

TEST(Schedule, AlbertSharedLayerSchedulesAllApplications)
{
    // ALBERT reuses one layer module: a single .checkpoint() on it must
    // cover every one of the `layers` applications in the profile.
    auto model = models::buildTinyModel("albert");
    auto sch = Schedule::create(model);
    (*sch)["shared_layer"].checkpoint();

    nn::Profiler profiler(2.0);
    {
        nn::ProfilerGuard guard(&profiler);
        model->call({nn::Value(Tensor::meta({1, 8}))});
    }
    int layer_kernels = 0;
    for (const auto& k : profiler.profile().kernels) {
        if (k.module_path.find("TransformerLayer") != std::string::npos) {
            ++layer_kernels;
            EXPECT_TRUE(k.checkpointed) << k.module_path << "/" << k.name;
        }
    }
    EXPECT_GT(layer_kernels, 0);
}

TEST(Verifier, MissingSyncDetected)
{
    auto model = tinyBert();
    model->initializeParams(5);
    ModulePtr reference = model->clone();

    auto sch = Schedule::create(model, 2);
    Schedule& ffn = (*sch)["encoder.layer.0.ffn"];
    // Column-shard fc1 and row-shard fc2 but "forget" the all-reduce:
    ffn["fc1"].shard(std::vector<std::string>{"weight", "bias"}, 0);
    ffn["fc2"].shard("weight", 1);

    VerifyOptions vopts;
    vopts.input_gen = [](int trial) {
        return std::vector<Tensor>{Tensor::randint({1, 4}, 64, 42 + trial)};
    };
    EXPECT_THROW(verifyEndToEnd(*reference, *sch, vopts), SlapoError);

    // Adding the sync point fixes it.
    ffn["fc2"].sync(nn::SyncDirection::Forward);
    verifyEndToEnd(*reference, *sch, vopts);
}

TEST(Verifier, GradientCheckAcceptsFusedSchedule)
{
    auto model = tinyBert();
    model->initializeParams(71);
    ModulePtr reference = model->clone();

    auto sch = Schedule::create(model);
    Schedule& ffn = (*sch)["encoder.layer.0.ffn"];
    ffn["fc1"].decompose();
    nn::TraceOptions options;
    options.flatten = true;
    ffn.trace({{2, 8, 16}}, options);
    ffn.fuse(ffn.find(graph::Pattern::chain({"add", "gelu"})).front());
    (*sch)["encoder.layer.1"].checkpoint();

    VerifyOptions vopts;
    vopts.num_inputs = 1;
    vopts.check_gradients = true;
    vopts.tolerance = 1e-3f;
    vopts.input_gen = [](int trial) {
        return std::vector<Tensor>{Tensor::randint({2, 8}, 64, 73 + trial)};
    };
    verifyEndToEnd(*reference, *sch, vopts);
}

TEST(Verifier, GradientCheckCatchesWrongBackward)
{
    // Replace a linear with different weights: forward check would catch
    // it, so freeze forward-equivalent weights but a *different dropout
    // seed* with p > 0 — forward differs too... instead, perturb a
    // parameter slightly below the forward tolerance but above the
    // gradient tolerance is fragile; use a coarse replacement and expect
    // the combined check to throw.
    auto model = tinyBert();
    model->initializeParams(79);
    ModulePtr reference = model->clone();
    auto sch = Schedule::create(model);
    auto fresh = std::make_shared<nn::Linear>(16, 16);
    fresh->initializeParams(997); // different function
    (*sch)["encoder.layer.0.ffn.fc2"].replace(fresh);

    VerifyOptions vopts;
    vopts.num_inputs = 1;
    vopts.check_gradients = true;
    vopts.input_gen = [](int trial) {
        return std::vector<Tensor>{Tensor::randint({2, 8}, 64, 83 + trial)};
    };
    EXPECT_THROW(verifyEndToEnd(*reference, *sch, vopts), SlapoError);
}

TEST(Pipeline, RequiresAnnotations)
{
    auto sch = Schedule::create(tinyBert(), 2);
    EXPECT_THROW(partitionPipeline(*sch, {{1, 4}}), SlapoError);
}

TEST(Pipeline, SplitRequiresDistributedWorld)
{
    auto sch = Schedule::create(tinyBert(), 1);
    EXPECT_THROW((*sch)["encoder.layer.0"].pipelineSplit(), SlapoError);
}

TEST(Pipeline, Fig5PartitionIncludesSiblings)
{
    // Split the 2-layer tiny BERT after layer 0: embeddings must land in
    // stage 0 and the pooler in stage 1 even though only the encoder's
    // containers get traced (Fig. 5).
    auto sch = Schedule::create(tinyBert(), 2);
    (*sch)["encoder.layer.0"].pipelineSplit();
    auto stages = partitionPipeline(*sch, {{1, 4}});
    ASSERT_EQ(stages.size(), 2u);
    ASSERT_EQ(stages[0].modules.size(), 2u);
    EXPECT_EQ(stages[0].modules[0].first, "embeddings");
    EXPECT_EQ(stages[0].modules[1].first, "encoder.layer.0");
    ASSERT_EQ(stages[1].modules.size(), 2u);
    EXPECT_EQ(stages[1].modules[0].first, "encoder.layer.1");
    EXPECT_EQ(stages[1].modules[1].first, "pooler");
}

TEST(Pipeline, StagesComputeTheSameFunction)
{
    auto model = tinyBert();
    model->initializeParams(13);
    ModulePtr reference = model->clone();

    auto sch = Schedule::create(model, 2);
    (*sch)["encoder.layer.0"].pipelineSplit();
    auto stages = partitionPipeline(*sch, {{1, 4}});
    auto wrapped = dialects::wrapForDeepSpeedPipeline(stages);

    Tensor ids = Tensor::randint({1, 4}, 64, 99);
    auto expected = runModel(*reference, {ids});
    std::vector<nn::Value> tuple = {nn::Value(ids)};
    tuple = dialects::runPipelineSequentially(wrapped, tuple);
    ASSERT_EQ(tuple.size(), 1u);
    EXPECT_TRUE(Tensor::allClose(expected[0], tuple[0].tensor(), 1e-4f));
}

TEST(Pipeline, GptSplitsAcrossDecoder)
{
    // OPT shares the GPT architecture but its top module is traceable;
    // GPT-Neo's untraceable top is covered by the TorchScript tests.
    auto model = models::buildTinyModel("opt");
    auto sch = Schedule::create(model, 2);
    (*sch)["decoder.layer.0"].pipelineSplit();
    auto stages = partitionPipeline(*sch, {{1, 4}});
    ASSERT_EQ(stages.size(), 2u);
    EXPECT_EQ(stages[0].modules.front().first, "embeddings");
    EXPECT_EQ(stages[1].modules.back().first, "head");
}

TEST(Schedule, UnApplyRestoresDefaultSchedule)
{
    auto model = tinyBert();
    model->initializeParams(211);
    ModulePtr reference = model->clone();

    auto sch = Schedule::create(model, 2);
    Schedule& fc1 = (*sch)["encoder.layer.0.ffn.fc1"];
    Schedule& fc2 = (*sch)["encoder.layer.0.ffn.fc2"];
    fc1.shard(std::vector<std::string>{"weight", "bias"}, 0);
    fc2.shard("weight", 1);
    fc2.sync(nn::SyncDirection::Forward);
    (*sch)["encoder.layer.1"].checkpoint();
    Schedule& ffn1 = (*sch)["encoder.layer.1.ffn"];
    ffn1.trace({{2, 8, 16}});

    // Un-apply everything, one by one (§3: "apply (or un-apply)").
    fc1.unshard("weight");
    fc1.unshard("bias");
    fc2.unshard("weight"); // last shard: orphaned sync dropped too
    (*sch)["encoder.layer.1"].uncheckpoint();
    ffn1.untrace();

    EXPECT_EQ(sch->toString(), "");
    // And the model behaves exactly like the untouched reference again,
    // on a single device.
    std::vector<nn::Value> in = {nn::Value(Tensor::randint({2, 8}, 64, 213))};
    EXPECT_TRUE(Tensor::allClose(reference->callOne(in).tensor(),
                                 model->callOne(in).tensor(), 1e-5f));
}

TEST(Schedule, UnshardRejectsUnknownParam)
{
    auto sch = Schedule::create(tinyBert(), 2);
    EXPECT_THROW((*sch)["pooler.dense"].unshard("weight"), SlapoError);
}

TEST(Schedule, ToStringListsAppliedPrimitives)
{
    auto sch = Schedule::create(tinyBert(), 2);
    EXPECT_EQ(sch->toString(), ""); // default schedule: nothing applied

    (*sch)["encoder.layer.0.ffn.fc1"].shard(
        std::vector<std::string>{"weight", "bias"}, 0);
    (*sch)["encoder.layer.0.ffn.fc2"].shard("weight", 1);
    (*sch)["encoder.layer.0.ffn.fc2"].sync(nn::SyncDirection::Forward);
    (*sch)["encoder.layer.1"].checkpoint();
    (*sch)["encoder.layer.0"].pipelineSplit();

    const std::string dump = sch->toString();
    EXPECT_NE(dump.find(".shard(weight, axis=0)"), std::string::npos);
    EXPECT_NE(dump.find(".shard(weight, axis=1)"), std::string::npos);
    EXPECT_NE(dump.find(".sync(forward, all_reduce)"), std::string::npos);
    EXPECT_NE(dump.find("encoder.layer.1 (TransformerLayer): .checkpoint()"),
              std::string::npos);
    EXPECT_NE(dump.find(".pipeline_split()"), std::string::npos);
    // Unscheduled modules stay out of the dump.
    EXPECT_EQ(dump.find("pooler"), std::string::npos);
}

TEST(Schedule, ToStringShowsTraceAndInterleave)
{
    auto sch = Schedule::create(tinyBert(), 2);
    Schedule& self = (*sch)["encoder.layer.0.attention.self"];
    auto attn = std::static_pointer_cast<nn::SelfAttention>(self.module());
    self.replace(nn::FusedSelfAttention::fromSelfAttention(*attn));
    (*sch)["encoder.layer.0.attention.self.qkv"].shard("weight", 0, 3);
    Schedule& ffn = (*sch)["encoder.layer.0.ffn"];
    nn::TraceOptions options;
    options.flatten = true;
    ffn.trace({{1, 4, 16}}, options);

    const std::string dump = sch->toString();
    EXPECT_NE(dump.find("interleave=3"), std::string::npos);
    EXPECT_NE(dump.find(".trace("), std::string::npos);
}

TEST(Graph, ValidateAcceptsTracedAndRewrittenGraphs)
{
    auto sch = Schedule::create(tinyBert());
    Schedule& ffn = (*sch)["encoder.layer.0.ffn"];
    ffn["fc1"].decompose();
    nn::TraceOptions options;
    options.flatten = true;
    ffn.trace({{1, 4, 16}}, options);
    ffn.graph().validate();
    ffn.fuse(ffn.find(graph::Pattern::chain({"add", "gelu"})).front());
    ffn.graph().validate(); // still well-formed after the rewrite
}

TEST(Graph, ValidateRejectsUseBeforeDef)
{
    graph::Graph g;
    graph::Node* ph = g.createNode(graph::NodeKind::Placeholder, "x");
    ph->setShapes({{2}});
    graph::Node* out = g.createNode(graph::NodeKind::Output, "out");
    graph::Node* late =
        g.createNode(graph::NodeKind::CallOp, "late"); // after output
    late->setOp(graph::OpKind::Gelu);
    late->addInput(ph);
    late->setShapes({{2}});
    out->addInput(late); // uses a node defined after it
    out->setShapes({{2}});
    g.setOutputNode(out);
    EXPECT_THROW(g.validate(), SlapoError);
}

TEST(Schedule, SubtreeEnumerates)
{
    auto sch = Schedule::create(models::buildTinyModel("opt"), 1);
    auto all = sch->subtree();
    EXPECT_GT(all.size(), 10u);
    EXPECT_EQ(all.front(), sch.get());
}

} // namespace
} // namespace core
} // namespace slapo
