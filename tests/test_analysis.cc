/**
 * @file
 * The static schedule verifier (docs/VERIFICATION.md, stage one):
 * shape/dtype inference, the sharding-consistency lattice, pipeline
 * split checks, the memory-plan alias audit, and the lint gates wired
 * into verification, replication, partitioning, and tuner admission.
 *
 * Every "IsCaught" test here runs with *unmaterialized* parameters —
 * the analyses must produce their verdicts from shapes and schedule
 * state alone, with zero tensor execution.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/lint.h"
#include "analysis/memplan_audit.h"
#include "analysis/pipeline_check.h"
#include "analysis/shape_infer.h"
#include "analysis/sharding.h"
#include "core/auto_shard.h"
#include "core/pipeline.h"
#include "core/schedule.h"
#include "core/verify.h"
#include "graph/memplan.h"
#include "json_validator.h"
#include "models/registry.h"
#include "nn/layers.h"
#include "nn/tracer.h"
#include "obs/run_log.h"
#include "runtime/dist_executor.h"
#include "tuner/tuner.h"

namespace slapo {
namespace {

using analysis::Diagnostics;
using analysis::Severity;
using analysis::StaticLintError;
using testutil::JsonValidator;

/** RAII: force the lint gates on for the test, leave them on after. */
class LintOn
{
  public:
    LintOn() { analysis::setLintEnabled(true); }
    ~LintOn() { analysis::setLintEnabled(true); }
};

std::string
scratchPath(const std::string& name)
{
    const auto dir = std::filesystem::temp_directory_path() / "slapo_lint";
    std::filesystem::create_directories(dir);
    const std::string path = (dir / name).string();
    std::remove(path.c_str());
    return path;
}

std::vector<std::string>
readLines(const std::string& path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty()) {
            lines.push_back(line);
        }
    }
    return lines;
}

/** First FFN path of a transformer model ("" if none). */
std::string
findFfn(nn::Module& model)
{
    for (auto& [path, m] : model.namedModules()) {
        if (m->typeName() == "FFN") {
            return path;
        }
    }
    return "";
}

// --- clean schedules must lint clean --------------------------------------

TEST(Lint, AutoShardedModelLintsClean)
{
    LintOn on;
    auto model = models::buildTinyModel("bert");
    auto sch = core::Schedule::create(model, 2);
    core::autoShard(*sch);
    // Trace the FFNs so shape inference, the graph-level lattice walk,
    // and the memory-plan audit all exercise real graphs.
    nn::TraceOptions topts;
    topts.flatten = true;
    for (auto& [path, m] : model->namedModules()) {
        if (m->typeName() == "FFN") {
            (*sch)[path].trace({{2, 8, 16}}, topts);
        }
    }

    Diagnostics diags = analysis::lintModule(*model, 2);
    EXPECT_FALSE(diags.hasErrors()) << diags.toString();
}

TEST(Lint, UnscheduledModelLintsClean)
{
    LintOn on;
    auto model = models::buildTinyModel("bert");
    Diagnostics diags = analysis::lintModule(*model, 1);
    EXPECT_FALSE(diags.hasErrors()) << diags.toString();
}

// --- acceptance: missing .sync() after .shard() ---------------------------

TEST(Sharding, MissingSyncAfterShardIsCaught)
{
    // Column-parallel fc1 + row-parallel fc2 with the mandatory forward
    // all-reduce omitted: every rank would return a partial sum.
    auto model = models::buildTinyModel("bert");
    auto sch = core::Schedule::create(model, 2);
    const std::string ffn = findFfn(*model);
    ASSERT_FALSE(ffn.empty());
    (*sch)[ffn]["fc1"].shard(std::vector<std::string>{"weight", "bias"}, 0);
    (*sch)[ffn]["fc2"].shard("weight", 1);
    // (no .sync(Forward) — the bug under test)

    Diagnostics diags = analysis::lintModule(*model, 2);
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.hasCode("SLP231")) << diags.toString();

    // With the canonical forward all-reduce restored the finding is gone.
    (*sch)[ffn]["fc2"].sync(nn::SyncDirection::Forward);
    Diagnostics fixed = analysis::lintModule(*model, 2);
    EXPECT_FALSE(fixed.hasErrors()) << fixed.toString();
}

TEST(Sharding, MisdirectedSyncIsWarned)
{
    // The aggregation exists but points backward: still a partial sum in
    // the forward pass — flagged as both the escape and the direction.
    auto model = models::buildTinyModel("bert");
    auto sch = core::Schedule::create(model, 2);
    const std::string ffn = findFfn(*model);
    ASSERT_FALSE(ffn.empty());
    (*sch)[ffn]["fc2"].shard("weight", 1);
    (*sch)[ffn]["fc2"].sync(nn::SyncDirection::Backward);

    Diagnostics diags = analysis::lintModule(*model, 2);
    EXPECT_TRUE(diags.hasCode("SLP231")) << diags.toString();
    EXPECT_TRUE(diags.hasCode("SLP211")) << diags.toString();
}

TEST(Sharding, SyncKindMismatchIsCaught)
{
    // All-reducing a column-sharded activation sums *different* slices.
    auto model = models::buildTinyModel("bert");
    auto sch = core::Schedule::create(model, 2);
    const std::string ffn = findFfn(*model);
    ASSERT_FALSE(ffn.empty());
    (*sch)[ffn]["fc1"].shard(std::vector<std::string>{"weight", "bias"}, 0);
    (*sch)[ffn]["fc1"].sync(nn::SyncDirection::Forward,
                            nn::SyncKind::AllReduce);

    Diagnostics diags = analysis::lintModule(*model, 2);
    EXPECT_TRUE(diags.hasCode("SLP212")) << diags.toString();
}

TEST(Sharding, RedundantDuplicateSyncIsWarnedNotErrored)
{
    auto model = models::buildTinyModel("bert");
    auto sch = core::Schedule::create(model, 2);
    const std::string ffn = findFfn(*model);
    ASSERT_FALSE(ffn.empty());
    (*sch)[ffn]["fc1"].shard(std::vector<std::string>{"weight", "bias"}, 0);
    (*sch)[ffn]["fc1"].sync(nn::SyncDirection::Backward);
    (*sch)[ffn]["fc1"].sync(nn::SyncDirection::Backward);

    Diagnostics diags = analysis::lintModule(*model, 2);
    EXPECT_TRUE(diags.hasCode("SLP220")) << diags.toString();
    EXPECT_FALSE(diags.hasErrors()) << diags.toString();
    EXPECT_GE(diags.count(Severity::Warning), 1u);
}

// --- acceptance: shard axis not dividing the extent -----------------------

TEST(Sharding, ShardAxisNotDividingExtentIsCaught)
{
    // Schedule::shard validates divisibility up front, so forge the spec
    // the way a hand-rolled (or deserialized) schedule state could:
    // weight (5, 7) split 2 ways on axis 0 leaves an uneven remainder.
    auto lin = std::make_shared<nn::Linear>(7, 5);
    nn::ShardSpec spec;
    spec.axis = 0;
    spec.world_size = 2;
    lin->meta().sharded_params["weight"] = spec;

    Diagnostics diags;
    analysis::checkSharding(*lin, 2, diags);
    EXPECT_TRUE(diags.hasCode("SLP202")) << diags.toString();
}

TEST(Sharding, InterleaveGroupsCountTowardDivisibility)
{
    // (8, 4) on axis 0 divides by world 2 but not by interleave 3 x 2.
    auto lin = std::make_shared<nn::Linear>(4, 8);
    nn::ShardSpec spec;
    spec.axis = 0;
    spec.world_size = 2;
    spec.interleave = 3;
    lin->meta().sharded_params["weight"] = spec;

    Diagnostics diags;
    analysis::checkSharding(*lin, 2, diags);
    EXPECT_TRUE(diags.hasCode("SLP202")) << diags.toString();
}

TEST(Sharding, SpecWorldSizeMismatchIsCaught)
{
    auto lin = std::make_shared<nn::Linear>(4, 8);
    nn::ShardSpec spec;
    spec.axis = 0;
    spec.world_size = 4;
    lin->meta().sharded_params["weight"] = spec;

    Diagnostics diags;
    analysis::checkSharding(*lin, 2, diags);
    EXPECT_TRUE(diags.hasCode("SLP203")) << diags.toString();
}

TEST(Sharding, OrphanedSyncIsCaught)
{
    // A sync with no shard anywhere beneath it: Schedule::sync refuses
    // to create this, so forge the state directly.
    auto lin = std::make_shared<nn::Linear>(4, 4);
    nn::SyncSpec sync;
    sync.direction = nn::SyncDirection::Forward;
    lin->meta().syncs.push_back(sync);

    Diagnostics diags;
    analysis::checkSharding(*lin, 2, diags);
    EXPECT_TRUE(diags.hasCode("SLP210")) << diags.toString();
}

// --- unshard() cleanup, with the sharding analysis as oracle --------------

TEST(Unshard, DropsOwnOrphanedSyncs)
{
    auto model = models::buildTinyModel("bert");
    auto sch = core::Schedule::create(model, 2);
    const std::string ffn = findFfn(*model);
    ASSERT_FALSE(ffn.empty());
    (*sch)[ffn]["fc2"].shard("weight", 1);
    (*sch)[ffn]["fc2"].sync(nn::SyncDirection::Forward);

    (*sch)[ffn]["fc2"].unshard("weight");

    nn::Module& fc2 = *(*sch)[ffn]["fc2"].module();
    EXPECT_TRUE(fc2.meta().syncs.empty());
    Diagnostics diags = analysis::lintModule(*model, 2);
    EXPECT_FALSE(diags.hasErrors()) << diags.toString();
}

TEST(Unshard, DropsAncestorOrphanedSyncs)
{
    // The canonical attention recipe hangs the sync on the *container*
    // while the shard sits on a child — unsharding the child must clean
    // the ancestor's aggregation point too, or re-applying the schedule
    // trips over an orphaned sync.
    auto model = models::buildTinyModel("bert");
    auto sch = core::Schedule::create(model, 2);
    const std::string ffn = findFfn(*model);
    ASSERT_FALSE(ffn.empty());
    (*sch)[ffn]["fc1"].shard(std::vector<std::string>{"weight", "bias"}, 0);
    (*sch)[ffn].sync(nn::SyncDirection::Backward);

    (*sch)[ffn]["fc1"].unshard("weight");
    (*sch)[ffn]["fc1"].unshard("bias");

    nn::Module& ffn_module = *(*sch)[ffn].module();
    EXPECT_TRUE(ffn_module.meta().syncs.empty());
    Diagnostics diags = analysis::lintModule(*model, 2);
    EXPECT_FALSE(diags.hasErrors()) << diags.toString();
}

TEST(Unshard, KeepsSyncsWhileOtherShardsRemain)
{
    auto model = models::buildTinyModel("bert");
    auto sch = core::Schedule::create(model, 2);
    const std::string ffn = findFfn(*model);
    ASSERT_FALSE(ffn.empty());
    (*sch)[ffn]["fc1"].shard(std::vector<std::string>{"weight", "bias"}, 0);
    (*sch)[ffn].sync(nn::SyncDirection::Backward);

    (*sch)[ffn]["fc1"].unshard("bias"); // weight still sharded

    nn::Module& ffn_module = *(*sch)[ffn].module();
    EXPECT_EQ(ffn_module.meta().syncs.size(), 1u);
}

// --- acceptance: pipeline split with a cross-stage data edge --------------

/** Sequential of two linears, traced; split annotation on child "0". */
std::shared_ptr<nn::Sequential>
buildSplitChain()
{
    auto seq = std::make_shared<nn::Sequential>();
    seq->append(std::make_shared<nn::Linear>(8, 8));
    seq->append(std::make_shared<nn::Linear>(8, 8));
    seq->meta().traced_graph = nn::traceModule(*seq, {{2, 8}});
    seq->child("0")->meta().pipeline_split_after = true;
    return seq;
}

TEST(Pipeline, CleanChainPassesTheCheck)
{
    auto seq = buildSplitChain();
    Diagnostics diags;
    analysis::checkPipeline(*seq, 4, diags);
    EXPECT_FALSE(diags.hasErrors()) << diags.toString();
}

TEST(Pipeline, CrossStageDataEdgeIsCaught)
{
    auto seq = buildSplitChain();
    // Forge a residual connection across the cut: the second stage's
    // child also reads the model input.
    graph::Graph& g = *seq->meta().traced_graph;
    graph::Node* placeholder = nullptr;
    graph::Node* second_call = nullptr;
    for (graph::Node* node : g.nodes()) {
        if (node->kind() == graph::NodeKind::Placeholder) {
            placeholder = node;
        }
        if (node->kind() == graph::NodeKind::CallModule) {
            second_call = node; // last CallModule wins
        }
    }
    ASSERT_NE(placeholder, nullptr);
    ASSERT_NE(second_call, nullptr);
    second_call->addInput(placeholder);

    Diagnostics diags;
    analysis::checkPipeline(*seq, 4, diags);
    EXPECT_TRUE(diags.hasCode("SLP304")) << diags.toString();

    // The partitioner's gate rejects it before any stage is built.
    auto sch = core::Schedule::create(seq, 4);
    EXPECT_THROW(core::partitionPipeline(*sch, {{2, 8}}), StaticLintError);
}

TEST(Pipeline, ComputeOutsideChildrenIsCaught)
{
    auto seq = buildSplitChain();
    // A residual add at container level: not a CallModule chain anymore.
    graph::Graph& g = *seq->meta().traced_graph;
    graph::Node* placeholder = g.placeholders()[0];
    graph::Node* out = g.outputNode();
    graph::Node* last_call = out->inputs()[0];
    graph::Node* add = g.createNodeBefore(graph::NodeKind::CallOp, "res", out);
    add->setOp(graph::OpKind::Add);
    add->addInput(last_call);
    add->addInput(placeholder);
    add->setShapes({{2, 8}});
    out->replaceInput(last_call, add);

    Diagnostics diags;
    analysis::checkPipeline(*seq, 4, diags);
    EXPECT_TRUE(diags.hasCode("SLP305")) << diags.toString();
}

TEST(Pipeline, MoreStagesThanWorldIsCaught)
{
    auto seq = buildSplitChain();
    Diagnostics diags;
    analysis::checkPipeline(*seq, 1, diags); // 2 stages, world of 1
    EXPECT_TRUE(diags.hasCode("SLP301")) << diags.toString();
}

TEST(Pipeline, TrailingSplitIsCaught)
{
    auto seq = buildSplitChain();
    seq->child("0")->meta().pipeline_split_after = false;
    seq->child("1")->meta().pipeline_split_after = true; // after the end
    Diagnostics diags;
    analysis::checkPipeline(*seq, 4, diags);
    EXPECT_TRUE(diags.hasCode("SLP303")) << diags.toString();
}

TEST(Pipeline, RootSplitIsCaught)
{
    auto seq = buildSplitChain();
    seq->child("0")->meta().pipeline_split_after = false;
    seq->meta().pipeline_split_after = true;
    Diagnostics diags;
    analysis::checkPipeline(*seq, 4, diags);
    EXPECT_TRUE(diags.hasCode("SLP302")) << diags.toString();
}

// --- acceptance: shape contradiction in a replaced subgraph ---------------

TEST(ShapeInfer, ShapeContradictionIsCaught)
{
    // Trace, then "replace" a node the way a buggy rewrite would: the
    // declared output shape no longer matches what the op computes.
    auto seq = std::make_shared<nn::Sequential>();
    seq->append(std::make_shared<nn::Linear>(8, 16));
    seq->append(
        std::make_shared<nn::Activation>(nn::Activation::Kind::Gelu));
    auto g = nn::traceModule(*seq, {{2, 8}}, nn::TraceOptions{/*flatten=*/true});
    seq->meta().traced_graph = g;

    Diagnostics clean;
    analysis::inferGraphShapes(*g, "", clean);
    EXPECT_FALSE(clean.hasErrors()) << clean.toString();

    // Corrupt the declared shape of the first float-producing op.
    for (graph::Node* node : g->nodes()) {
        if (node->kind() == graph::NodeKind::CallOp) {
            node->setShapes({{2, 17}});
            break;
        }
    }
    Diagnostics diags;
    analysis::inferGraphShapes(*g, "", diags);
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.hasCode("SLP101") || diags.hasCode("SLP103"))
        << diags.toString();
}

TEST(ShapeInfer, FloatEmbeddingIdsAreCaught)
{
    // ids -> gelu -> embedding: the lookup input became real-valued.
    auto g = std::make_shared<graph::Graph>();
    graph::Node* ids = g->createNode(graph::NodeKind::Placeholder, "ids");
    ids->setShapes({{2, 4}});
    graph::Node* gelu = g->createNode(graph::NodeKind::CallOp, "gelu");
    gelu->setOp(graph::OpKind::Gelu);
    gelu->addInput(ids);
    gelu->setShapes({{2, 4}});
    graph::Node* table = g->createNode(graph::NodeKind::Placeholder, "table");
    table->setShapes({{16, 8}});
    graph::Node* emb = g->createNode(graph::NodeKind::CallOp, "embedding");
    emb->setOp(graph::OpKind::EmbeddingOp);
    emb->addInput(gelu);
    emb->addInput(table);
    emb->setShapes({{2, 4, 8}});
    graph::Node* out = g->createNode(graph::NodeKind::Output, "out");
    out->addInput(emb);
    out->setShapes({{2, 4, 8}});
    g->setOutputNode(out);

    Diagnostics diags;
    analysis::inferGraphShapes(*g, "", diags);
    EXPECT_TRUE(diags.hasCode("SLP110")) << diags.toString();
}

// --- acceptance: unsafe in-place mark in a memory plan --------------------

/** x -> gelu a -> add(a, x): x stays live until the add. */
std::shared_ptr<graph::Graph>
buildAliasGraph()
{
    auto g = std::make_shared<graph::Graph>();
    graph::Node* x = g->createNode(graph::NodeKind::Placeholder, "x");
    x->setShapes({{2, 4}});
    graph::Node* a = g->createNode(graph::NodeKind::CallOp, "a");
    a->setOp(graph::OpKind::Gelu);
    a->addInput(x);
    a->setShapes({{2, 4}});
    graph::Node* add = g->createNode(graph::NodeKind::CallOp, "add");
    add->setOp(graph::OpKind::Add);
    add->addInput(a);
    add->addInput(x);
    add->setShapes({{2, 4}});
    graph::Node* out = g->createNode(graph::NodeKind::Output, "out");
    out->addInput(add);
    out->setShapes({{2, 4}});
    g->setOutputNode(out);
    return g;
}

TEST(MemPlanAudit, PlannerOutputAuditsClean)
{
    auto g = buildAliasGraph();
    graph::MemPlan plan = *graph::buildMemPlan(*g, {{2, 4}});
    Diagnostics diags;
    analysis::auditMemPlan(*g, plan, "", diags);
    EXPECT_FALSE(diags.hasErrors()) << diags.toString();
}

TEST(MemPlanAudit, UnsafeInplaceMarkIsCaught)
{
    auto g = buildAliasGraph();
    graph::MemPlan plan = *graph::buildMemPlan(*g, {{2, 4}});
    // Forge the bug the planner must never produce: gelu overwrites x
    // in place while the later add still reads x.
    const graph::Node* gelu = g->nodes()[1];
    ASSERT_EQ(gelu->op(), graph::OpKind::Gelu);
    plan.actions[gelu->id()].inplace = true;

    Diagnostics diags;
    analysis::auditMemPlan(*g, plan, "", diags);
    EXPECT_TRUE(diags.hasCode("SLP403")) << diags.toString();
}

TEST(MemPlanAudit, ReleaseWhileLiveIsCaught)
{
    auto g = buildAliasGraph();
    graph::MemPlan plan = *graph::buildMemPlan(*g, {{2, 4}});
    const graph::Node* x = g->nodes()[0];
    const graph::Node* gelu = g->nodes()[1];
    plan.actions[gelu->id()].release_after.push_back(x->id());

    Diagnostics diags;
    analysis::auditMemPlan(*g, plan, "", diags);
    EXPECT_TRUE(diags.hasCode("SLP401")) << diags.toString();
}

TEST(MemPlanAudit, ReleaseOfOutputOperandIsCaught)
{
    auto g = buildAliasGraph();
    graph::MemPlan plan = *graph::buildMemPlan(*g, {{2, 4}});
    const graph::Node* add = g->nodes()[2];
    plan.actions[add->id()].release_after.push_back(add->id());

    Diagnostics diags;
    analysis::auditMemPlan(*g, plan, "", diags);
    EXPECT_TRUE(diags.hasCode("SLP402")) << diags.toString();
}

TEST(MemPlanAudit, ReleaseOfForeignIdIsCaught)
{
    auto g = buildAliasGraph();
    graph::MemPlan plan = *graph::buildMemPlan(*g, {{2, 4}});
    const graph::Node* gelu = g->nodes()[1];
    plan.actions[gelu->id()].release_after.push_back(9999);

    Diagnostics diags;
    analysis::auditMemPlan(*g, plan, "", diags);
    EXPECT_TRUE(diags.hasCode("SLP404")) << diags.toString();
}

// --- the gates ------------------------------------------------------------

TEST(Gates, StaticLintFailsBeforeAnyNumericVerification)
{
    // The broken schedule must be rejected before verifyEndToEnd asks
    // for a single input tensor — static before numeric (stage order).
    LintOn on;
    auto model = models::buildTinyModel("bert");
    model->initializeParams(17);
    nn::ModulePtr reference = model->clone();
    auto sch = core::Schedule::create(model, 2);
    const std::string ffn = findFfn(*model);
    ASSERT_FALSE(ffn.empty());
    (*sch)[ffn]["fc2"].shard("weight", 1); // missing sync

    int input_gen_calls = 0;
    core::VerifyOptions vopts;
    vopts.input_gen = [&input_gen_calls](int trial) {
        ++input_gen_calls;
        return std::vector<Tensor>{Tensor::randint({2, 8}, 64, 90 + trial)};
    };
    EXPECT_THROW(core::verifyEndToEnd(*reference, *sch, vopts),
                 StaticLintError);
    EXPECT_EQ(input_gen_calls, 0);
}

TEST(Gates, VerifyEndToEndUsesTheCustomInputGen)
{
    LintOn on;
    auto model = models::buildTinyModel("bert");
    model->initializeParams(19);
    nn::ModulePtr reference = model->clone();
    auto sch = core::Schedule::create(model, 2);
    core::autoShard(*sch);

    int input_gen_calls = 0;
    core::VerifyOptions vopts;
    vopts.input_gen = [&input_gen_calls](int trial) {
        ++input_gen_calls;
        return std::vector<Tensor>{Tensor::randint({2, 8}, 64, 70 + trial)};
    };
    core::verifyEndToEnd(*reference, *sch, vopts);
    EXPECT_EQ(input_gen_calls, vopts.num_inputs);
}

TEST(Gates, CheckGradientsPassesOnEquivalentSchedule)
{
    LintOn on;
    auto model = models::buildTinyModel("bert");
    model->initializeParams(23);
    nn::ModulePtr reference = model->clone();
    auto sch = core::Schedule::create(model, 1);

    core::VerifyOptions vopts;
    vopts.check_gradients = true;
    vopts.input_gen = [](int trial) {
        return std::vector<Tensor>{Tensor::randint({2, 8}, 64, 80 + trial)};
    };
    core::verifyEndToEnd(*reference, *sch, vopts);
}

TEST(Gates, CheckGradientsReportsStructureMismatch)
{
    // Gradient comparison requires structure-compatible schedules; the
    // mismatch (a replacement that dropped a parameter) must be named.
    LintOn on;
    auto reference = std::make_shared<nn::Sequential>();
    reference->append(std::make_shared<nn::Linear>(4, 8, /*bias=*/true));
    reference->initializeParams(3);
    auto replaced = std::make_shared<nn::Sequential>();
    auto no_bias = std::make_shared<nn::Linear>(4, 8, /*bias=*/false);
    no_bias->initializeParams(5);
    no_bias->setParamTensor(
        "weight", reference->child("0")->paramTensor("weight"));
    replaced->append(no_bias);
    // Zero the reference bias so the forward passes stay identical and
    // verification reaches the gradient stage.
    reference->child("0")->setParamTensor("bias", Tensor::zeros({8}));

    auto sch = core::Schedule::create(replaced, 1);
    core::VerifyOptions vopts;
    vopts.check_gradients = true;
    vopts.input_shapes = {{2, 4}};
    try {
        core::verifyEndToEnd(*reference, *sch, vopts);
        FAIL() << "gradient structure mismatch was not reported";
    } catch (const StaticLintError&) {
        FAIL() << "the static stage misfired; this is a numeric-stage case";
    } catch (const SlapoError& e) {
        EXPECT_NE(std::string(e.what()).find("parameter count"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Gates, ReplicateRejectsBrokenSchedules)
{
    LintOn on;
    auto model = models::buildTinyModel("bert");
    auto sch = core::Schedule::create(model, 2);
    const std::string ffn = findFfn(*model);
    ASSERT_FALSE(ffn.empty());
    (*sch)[ffn]["fc2"].shard("weight", 1); // missing sync

    runtime::DistExecutor executor(2);
    EXPECT_THROW(executor.replicate(*model), StaticLintError);
}

TEST(Gates, DisabledLintSkipsTheGate)
{
    auto model = models::buildTinyModel("bert");
    auto sch = core::Schedule::create(model, 2);
    const std::string ffn = findFfn(*model);
    ASSERT_FALSE(ffn.empty());
    (*sch)[ffn]["fc2"].shard("weight", 1); // missing sync

    analysis::setLintEnabled(false);
    Diagnostics diags = analysis::enforceLint(*model, 2, "test.disabled");
    analysis::setLintEnabled(true);
    EXPECT_TRUE(diags.empty());
    EXPECT_THROW(analysis::enforceLint(*model, 2, "test.enabled"),
                 StaticLintError);
}

// --- tuner trial admission ------------------------------------------------

TEST(Gates, TunerRecordsStaticallyPrunedTrials)
{
    LintOn on;
    const std::string log = scratchPath("tuner_lint.jsonl");
    obs::openRunLog(log);

    auto bad = models::buildTinyModel("bert");
    auto bad_sch = core::Schedule::create(bad, 2);
    const std::string ffn = findFfn(*bad);
    ASSERT_FALSE(ffn.empty());
    (*bad_sch)[ffn]["fc2"].shard("weight", 1); // missing sync

    tuner::SearchSpace space;
    space.addVar("use_tp", {0, 1});
    tuner::EvalFn eval = [&bad](const tuner::Config& c) {
        if (c.at("use_tp") > 0) {
            analysis::enforceLint(*bad, 2, "tuner.trial");
        }
        return 1.0;
    };
    tuner::TuneResult result = tuner::exhaustiveSearch(space, eval);
    obs::closeRunLog();

    // Both configs evaluated; the invalid one scored 0 and lost.
    EXPECT_EQ(result.evaluated, 2);
    EXPECT_EQ(result.best.at("use_tp"), 0);
    EXPECT_EQ(result.best_value, 1.0);

    bool saw_pruned = false;
    for (const std::string& l : readLines(log)) {
        if (l.find("\"kind\":\"tuner.trial\"") == std::string::npos ||
            l.find("\"pruned_static\":true") == std::string::npos) {
            continue;
        }
        saw_pruned = true;
        EXPECT_TRUE(JsonValidator(l).valid()) << l;
        EXPECT_NE(l.find("\"lint_codes\":\"SLP231\""), std::string::npos)
            << l;
        EXPECT_NE(l.find("\"value\":0"), std::string::npos) << l;
    }
    EXPECT_TRUE(saw_pruned);
}

// --- run-log records and JSON emission ------------------------------------

TEST(Lint, RunLogRecordIsSchemaStamped)
{
    LintOn on;
    const std::string log = scratchPath("lint_records.jsonl");
    obs::openRunLog(log);
    auto model = models::buildTinyModel("bert");
    analysis::enforceLint(*model, 1, "test.site");
    obs::closeRunLog();

    bool saw_lint = false;
    for (const std::string& l : readLines(log)) {
        if (l.find("\"kind\":\"lint\"") == std::string::npos) {
            continue;
        }
        saw_lint = true;
        EXPECT_TRUE(JsonValidator(l).valid()) << l;
        EXPECT_NE(l.find("\"schema_version\""), std::string::npos) << l;
        EXPECT_NE(l.find("\"site\":\"test.site\""), std::string::npos) << l;
        EXPECT_NE(l.find("\"passed\":true"), std::string::npos) << l;
        EXPECT_NE(l.find("\"wall_ns\""), std::string::npos) << l;
    }
    EXPECT_TRUE(saw_lint);
}

TEST(Lint, DiagnosticsJsonIsValid)
{
    auto model = models::buildTinyModel("bert");
    auto sch = core::Schedule::create(model, 2);
    const std::string ffn = findFfn(*model);
    ASSERT_FALSE(ffn.empty());
    (*sch)[ffn]["fc2"].shard("weight", 1);

    Diagnostics diags = analysis::lintModule(*model, 2);
    ASSERT_TRUE(diags.hasErrors());
    EXPECT_TRUE(JsonValidator(diags.toJson()).valid()) << diags.toJson();
    EXPECT_TRUE(JsonValidator(diags.diagnosticsJson()).valid());
    EXPECT_NE(diags.toJson().find("\"kind\":\"lint\""), std::string::npos);
    EXPECT_NE(diags.toJson().find("\"schema_version\""), std::string::npos);

    // The thrown gate error carries the same report plus the site.
    try {
        analysis::enforceLint(*model, 2, "test.json");
        FAIL() << "expected StaticLintError";
    } catch (const StaticLintError& e) {
        EXPECT_EQ(e.site(), "test.json");
        EXPECT_TRUE(e.diagnostics().hasCode("SLP231"));
        EXPECT_NE(std::string(e.what()).find("SLP231"), std::string::npos);
    }
}

// --- performance ----------------------------------------------------------

TEST(Lint, FullLintOfScheduledTransformerIsFast)
{
    // The gate sits on materialization and tuner admission: it must be
    // paid-for-free cheap. < 5 ms for a fully scheduled transformer.
    auto model = models::buildTinyModel("bert");
    auto sch = core::Schedule::create(model, 2);
    core::autoShard(*sch);
    nn::TraceOptions topts;
    topts.flatten = true;
    for (auto& [path, m] : model->namedModules()) {
        if (m->typeName() == "FFN") {
            (*sch)[path].trace({{2, 8, 16}}, topts);
        }
    }

    // Warm up (first call touches allocators, builds memplan caches).
    analysis::lintModule(*model, 2);

    double best_ms = 1e9;
    for (int i = 0; i < 5; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        Diagnostics diags = analysis::lintModule(*model, 2);
        const double ms = std::chrono::duration_cast<
                              std::chrono::duration<double, std::milli>>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        best_ms = std::min(best_ms, ms);
        ASSERT_FALSE(diags.hasErrors());
    }
    EXPECT_LT(best_ms, 5.0);
}

} // namespace
} // namespace slapo
