/** @file Property-style invariants, parameterized across ops, models,
 * world sizes, and schedule knobs (gtest TEST_P sweeps). */
#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/auto_shard.h"
#include "core/verify.h"
#include "models/registry.h"
#include "runtime/dist_executor.h"
#include "runtime/process_group.h"
#include "tensor/ops.h"

namespace slapo {
namespace {

// --- elementwise op properties ----------------------------------------------

using UnaryFn = Tensor (*)(const Tensor&);

struct UnaryCase
{
    const char* name;
    UnaryFn fn;
    bool bounded01; ///< output in [0, 1]
};

Tensor
geluWrap(const Tensor& t)
{
    return ops::gelu(t);
}
Tensor
reluWrap(const Tensor& t)
{
    return ops::relu(t);
}
Tensor
tanhWrap(const Tensor& t)
{
    return ops::tanhOp(t);
}
Tensor
softmaxWrap(const Tensor& t)
{
    return ops::softmax(t);
}

class UnaryOpProperty : public ::testing::TestWithParam<UnaryCase>
{
};

TEST_P(UnaryOpProperty, ShapePreservingAndDeterministic)
{
    const UnaryCase& c = GetParam();
    Tensor x = Tensor::uniform({3, 5, 7}, 2.0f, 123);
    Tensor y1 = c.fn(x);
    Tensor y2 = c.fn(x);
    EXPECT_EQ(y1.shape(), x.shape());
    EXPECT_TRUE(Tensor::allClose(y1, y2));
    if (c.bounded01) {
        for (int64_t i = 0; i < y1.numel(); ++i) {
            EXPECT_GE(y1.at(i), 0.0f);
            EXPECT_LE(y1.at(i), 1.0f);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, UnaryOpProperty,
    ::testing::Values(UnaryCase{"gelu", &geluWrap, false},
                      UnaryCase{"relu", &reluWrap, false},
                      UnaryCase{"tanh", &tanhWrap, false},
                      UnaryCase{"softmax", &softmaxWrap, true}),
    [](const auto& info) { return info.param.name; });

// --- schedules preserve model FLOPs --------------------------------------------

class FlopsInvariance : public ::testing::TestWithParam<const char*>
{
};

/**
 * Property: schedules change *how* a model executes, never *what* it
 * computes — so the profiled forward FLOPs are invariant across every
 * recipe (fusion accumulates, flash recomputes internally; both keep the
 * arithmetic identical).
 */
TEST_P(FlopsInvariance, RecipesKeepForwardFlops)
{
    const std::string name = GetParam();
    sim::TrainingSimulator simulator(sim::ClusterSpec::singleV100(),
                                     baselines::modelBytesPerElement(name));
    auto shapes = baselines::modelShapeFn(name, 0)(2);

    auto flops_of = [&](const baselines::ScheduleRecipe& recipe) {
        auto sch = baselines::applyRecipe(models::buildModel(name, 0), recipe);
        return simulator.profileModel(*sch->module(), shapes, 1).totalFlops();
    };
    const double vanilla = flops_of(baselines::ScheduleRecipe::vanilla());
    const double kernels =
        flops_of(baselines::ScheduleRecipe::kernelOptimized());
    const double ckpt =
        flops_of(baselines::ScheduleRecipe::kernelOptimized(0.5));
    EXPECT_NEAR(kernels / vanilla, 1.0, 0.01) << name;
    EXPECT_NEAR(ckpt / vanilla, 1.0, 0.01) << name;
}

INSTANTIATE_TEST_SUITE_P(Models, FlopsInvariance,
                         ::testing::Values("bert", "roberta", "albert", "gpt",
                                           "opt", "t5", "wideresnet"));

/** TP over N ranks splits compute: with the auto-sharded plan (which
 * also shards the vocabulary head) N x rank-0 FLOPs ~ full FLOPs, up to
 * the replicated embeddings/norms. */
TEST(FlopsInvariance, TensorParallelPartitionsWork)
{
    sim::TrainingSimulator simulator(sim::ClusterSpec::p3_16xlarge(), 2.0);
    auto shapes = baselines::modelShapeFn("bert", 0)(2);
    auto full = baselines::applyRecipe(models::buildModel("bert", 0),
                                       baselines::ScheduleRecipe::vanilla());
    const double full_flops =
        simulator.profileModel(*full->module(), shapes, 1).totalFlops();
    for (int tp : {2, 4, 8}) {
        auto sch = core::Schedule::create(models::buildModel("bert", 0), tp);
        core::autoShard(*sch);
        const double rank_flops =
            simulator.profileModel(*sch->module(), shapes, tp).totalFlops();
        EXPECT_NEAR(rank_flops * tp / full_flops, 1.0, 0.15) << "tp=" << tp;
        // And strictly fewer FLOPs per rank than the full model.
        EXPECT_LT(rank_flops, full_flops);
    }
}

// --- distributed equivalence across world sizes ---------------------------------

class WorldSizeSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(WorldSizeSweep, AutoShardedBertMatchesReference)
{
    const int world = GetParam();
    // A 4-way shard needs 4 heads; build a slightly wider test model.
    models::TransformerConfig config =
        models::modelConfig("bert", 0).scaled(/*hidden=*/32, /*layers=*/2,
                                              /*heads=*/4, /*vocab=*/64,
                                              /*seq=*/8);
    config.dropout = 0.0;
    nn::ModulePtr model = std::make_shared<models::BertModel>(config);
    model->initializeParams(31);
    nn::ModulePtr reference = model->clone();
    auto sch = core::Schedule::create(model, world);
    core::autoShard(*sch);

    core::VerifyOptions vopts;
    vopts.input_gen = [](int trial) {
        return std::vector<Tensor>{Tensor::randint({2, 8}, 64, 50 + trial)};
    };
    core::verifyEndToEnd(*reference, *sch, vopts);
}

INSTANTIATE_TEST_SUITE_P(Worlds, WorldSizeSweep, ::testing::Values(2, 4));

TEST(SyncStrategies, ImmediateAllGatherIsAlsoCorrect)
{
    // The "naive" strategy of ablation B — all-gather right after the
    // column-parallel linear — must also verify (it is valid, just more
    // expensive), demonstrating the flexibility of explicit .sync().
    auto model = models::buildTinyModel("bert");
    model->initializeParams(37);
    nn::ModulePtr reference = model->clone();
    auto sch = core::Schedule::create(model, 2);
    for (auto& [path, m] : model->namedModules()) {
        if (m->typeName() == "FFN") {
            core::Schedule& ffn = (*sch)[path];
            ffn["fc1"].shard(std::vector<std::string>{"weight", "bias"}, 0);
            ffn["fc1"].sync(nn::SyncDirection::Forward,
                            nn::SyncKind::AllGather, /*axis=*/-1);
        }
    }
    core::VerifyOptions vopts;
    vopts.input_gen = [](int trial) {
        return std::vector<Tensor>{Tensor::randint({2, 8}, 64, 60 + trial)};
    };
    core::verifyEndToEnd(*reference, *sch, vopts);
}

// --- simulator monotonicity -----------------------------------------------------

TEST(SimulatorMonotonicity, ThroughputGrowsWithDataParallelism)
{
    auto model = models::buildModel("bert", 0);
    auto shapes = baselines::modelShapeFn("bert", 0);
    double previous = 0;
    for (int dp : {1, 2, 4, 8}) {
        sim::ClusterSpec cluster = sim::ClusterSpec::p3_16xlarge();
        cluster.gpus_per_node = dp;
        sim::TrainingSimulator simulator(cluster, 2.0);
        sim::ParallelConfig config;
        config.dp = dp;
        config.micro_batch = 4;
        sim::StepStats stats = simulator.simulate(*model, shapes, config);
        ASSERT_FALSE(stats.oom);
        EXPECT_GT(stats.throughput, previous) << "dp=" << dp;
        previous = stats.throughput;
    }
}

TEST(SimulatorMonotonicity, ActivationMemoryGrowsWithMicroBatch)
{
    sim::TrainingSimulator simulator(sim::ClusterSpec::singleV100(), 2.0);
    auto model = models::buildModel("bert", 0);
    sim::MemoryModel mm(2.0, 0, 1);
    double previous = 0;
    for (int mb : {1, 2, 4, 8}) {
        nn::Profile profile = simulator.profileModel(*model, {{mb, 512}}, 1);
        const double act = mm.activationMemory(profile);
        EXPECT_GT(act, previous);
        previous = act;
    }
}

TEST(SimulatorMonotonicity, ActivationMemoryFallsWithCheckpointRatio)
{
    sim::TrainingSimulator simulator(sim::ClusterSpec::singleV100(), 2.0);
    sim::MemoryModel mm(2.0, 0, 1);
    double previous = 1e18;
    for (double ratio : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        auto sch = baselines::applyRecipe(
            models::buildModel("bert", 0),
            baselines::ScheduleRecipe::kernelOptimized(ratio));
        nn::Profile profile =
            simulator.profileModel(*sch->module(), {{4, 512}}, 1);
        const double act = mm.activationMemory(profile);
        EXPECT_LT(act, previous) << "ratio " << ratio;
        previous = act;
    }
}

TEST(SimulatorMonotonicity, RecomputeGrowsWithCheckpointRatio)
{
    sim::TrainingSimulator simulator(sim::ClusterSpec::singleV100(), 2.0);
    auto shapes = baselines::modelShapeFn("bert", 0);
    double previous = -1;
    for (double ratio : {0.0, 0.5, 1.0}) {
        auto sch = baselines::applyRecipe(
            models::buildModel("bert", 0),
            baselines::ScheduleRecipe::kernelOptimized(ratio));
        sim::ParallelConfig config;
        config.micro_batch = 4;
        sim::StepStats stats =
            simulator.simulate(*sch->module(), shapes, config);
        EXPECT_GT(stats.phases.recompute, previous);
        previous = stats.phases.recompute;
    }
}

// --- verifier options honored ------------------------------------------------

// --- robustness / failure injection ----------------------------------------

TEST(Robustness, WorldSizeOneIsPassthrough)
{
    auto model = models::buildTinyModel("bert");
    model->initializeParams(301);
    Tensor ids = Tensor::randint({1, 8}, 64, 303);
    std::vector<nn::Value> vx = {nn::Value(ids)};
    Tensor expected = model->callOne(vx).tensor();

    runtime::DistExecutor executor(1);
    auto outputs = executor.forward(*model, {ids});
    ASSERT_EQ(outputs.size(), 1u);
    EXPECT_TRUE(Tensor::allClose(expected, outputs[0][0], 1e-6f));
}

TEST(Robustness, AllOomTuningReportsOom)
{
    // A 16GB device cannot fit GPT-10B at any batch size.
    sim::TrainingSimulator simulator(sim::ClusterSpec::singleV100(), 2.0);
    auto model = models::buildGpt10B();
    sim::StepStats best = simulator.tuneMicroBatch(
        *model, baselines::modelShapeFn("gpt-10b", 0), {}, 16);
    EXPECT_TRUE(best.oom);
    EXPECT_DOUBLE_EQ(best.throughput, 0.0);
}

TEST(Robustness, SimulatorRejectsWorldMismatch)
{
    sim::TrainingSimulator simulator(sim::ClusterSpec::p3_16xlarge(), 2.0);
    auto model = models::buildModel("bert", 0);
    sim::ParallelConfig config;
    config.dp = 4; // cluster has 8 GPUs
    EXPECT_THROW(simulator.simulate(*model,
                                    baselines::modelShapeFn("bert", 0),
                                    config),
                 SlapoError);
}

TEST(Robustness, ProcessGroupRejectsBadRank)
{
    runtime::ProcessGroup group(2);
    EXPECT_THROW(group.allReduce(5, Tensor::zeros({1})), SlapoError);
}

TEST(Robustness, IdentityProfileTransformChangesNothing)
{
    sim::TrainingSimulator simulator(sim::ClusterSpec::singleV100(), 2.0);
    auto model = models::buildModel("bert", 0);
    auto shapes = baselines::modelShapeFn("bert", 0);
    sim::ParallelConfig config;
    config.micro_batch = 2;
    sim::StepStats plain = simulator.simulate(*model, shapes, config);
    sim::StepStats transformed = simulator.simulate(
        *model, shapes, config, [](nn::Profile p) { return p; });
    EXPECT_DOUBLE_EQ(plain.step_time, transformed.step_time);
    EXPECT_DOUBLE_EQ(plain.memory.total(), transformed.memory.total());
}

TEST(VerifierOptions, NumInputsControlsTrials)
{
    nn::Linear lin(4, 4);
    lin.initializeParams(1);
    int calls = 0;
    core::VerifyOptions vopts;
    vopts.num_inputs = 5;
    vopts.input_gen = [&calls](int) {
        ++calls;
        return std::vector<Tensor>{Tensor::uniform({2, 4}, 1.0f, 9)};
    };
    core::verifyReplacement(lin, lin, vopts);
    EXPECT_EQ(calls, 5);
}

TEST(VerifierOptions, ToleranceIsRespected)
{
    nn::Linear a(4, 4);
    a.initializeParams(1);
    auto b = std::static_pointer_cast<nn::Linear>(a.clone());
    // Perturb one weight slightly.
    b->paramTensor("weight").set(0, b->paramTensor("weight").at(0) + 1e-4f);
    core::VerifyOptions strict;
    strict.input_shapes = {{2, 4}};
    strict.tolerance = 1e-7f;
    EXPECT_THROW(core::verifyReplacement(a, *b, strict), SlapoError);
    core::VerifyOptions loose = strict;
    loose.tolerance = 1e-2f;
    core::verifyReplacement(a, *b, loose);
}

} // namespace
} // namespace slapo
