/** @file Tests of elastic world-size recovery: a rank *permanently*
 * lost (failpoint `die` mode) must not end training — the survivors
 * rebuild the group, pick up the lost ranks' data shards, restore the
 * last bit-exact checkpoint, and keep going. The acceptance bar: a
 * 4-rank run that loses rank 2 finishes all steps on 3 survivors with
 * an "elastic.rebuild" run-log record naming the lost rank, and the
 * post-shrink trajectory is bitwise reproducible at any kernel thread
 * count. */
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "models/registry.h"
#include "nn/context.h"
#include "obs/mem_profiler.h"
#include "obs/run_log.h"
#include "runtime/checkpoint.h"
#include "runtime/dist_executor.h"
#include "runtime/trainer.h"
#include "support/failpoint.h"
#include "support/parallel.h"

namespace slapo {
namespace runtime {
namespace {

namespace fp = support::failpoint;
using nn::ModulePtr;

/** Fresh, empty scratch directory under the gtest temp root. */
std::string
scratchDir(const std::string& name)
{
    const auto dir = std::filesystem::path(::testing::TempDir()) /
                     ("slapo_elastic_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

std::vector<std::string>
readLines(const std::string& path)
{
    std::vector<std::string> lines;
    std::ifstream f(path);
    std::string line;
    while (std::getline(f, line)) {
        if (!line.empty()) {
            lines.push_back(line);
        }
    }
    return lines;
}

/** First log line containing `needle`, or "" if none. */
std::string
findLine(const std::vector<std::string>& lines, const std::string& needle)
{
    for (const std::string& line : lines) {
        if (line.find(needle) != std::string::npos) {
            return line;
        }
    }
    return "";
}

ModulePtr
buildLossModel(uint64_t seed)
{
    auto model = withCrossEntropyLoss(models::buildTinyModel("bert"));
    model->initializeParams(seed);
    return model;
}

/** Deterministic per-shard input tuples (the DP BatchProvider). */
std::vector<std::vector<Tensor>>
shardBatches(int base_world, int64_t step)
{
    std::vector<std::vector<Tensor>> per_shard;
    for (int64_t s = 0; s < base_world; ++s) {
        per_shard.push_back(
            {Tensor::randint({1, 8}, 64, 5000 + 10 * step + s),
             Tensor::randint({1, 8}, 64, 6000 + 10 * step + s)});
    }
    return per_shard;
}

/** Deep copies of every parameter of `m`, in registration order. */
std::vector<Tensor>
snapshotParams(nn::Module& m)
{
    std::vector<Tensor> out;
    for (auto& [path, tensor] : m.namedParams()) {
        Tensor copy = Tensor::zeros(tensor->shape());
        copy.copyFrom(*tensor);
        out.push_back(std::move(copy));
    }
    return out;
}

::testing::AssertionResult
snapshotsBitwiseEqual(const std::vector<Tensor>& a,
                      const std::vector<Tensor>& b)
{
    if (a.size() != b.size()) {
        return ::testing::AssertionFailure()
               << "param count " << a.size() << " vs " << b.size();
    }
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].shape() != b[i].shape() ||
            std::memcmp(a[i].data(), b[i].data(),
                        static_cast<size_t>(a[i].numel()) * sizeof(float)) !=
                0) {
            return ::testing::AssertionFailure()
                   << "bitwise mismatch at param " << i << " (max diff "
                   << Tensor::maxAbsDiff(a[i], b[i]) << ")";
        }
    }
    return ::testing::AssertionSuccess();
}

/** Elastic recovery options used across the scenario tests. */
RecoveryOptions
elasticRecovery(const std::string& dir)
{
    RecoveryOptions recovery;
    recovery.checkpoint_every = 1;
    recovery.checkpoint_dir = dir;
    recovery.max_retries = 4;
    recovery.elastic = true;
    recovery.liveness_deadline_ms = 500;
    recovery.restore_backoff_ms = 10;
    return recovery;
}

/** All elastic tests start and end with clean global state. */
class ElasticTest : public ::testing::Test
{
  protected:
    void SetUp() override { fp::clearAll(); }

    void
    TearDown() override
    {
        fp::clearAll();
        obs::closeRunLog();
        setNumThreads(0);
    }
};

// --- die mode and loss declaration ------------------------------------------

TEST_F(ElasticTest, DieActionParsesAndThrowsRankLostError)
{
    EXPECT_EQ(fp::configureFromString("pg.allreduce@0:die:r1"), 1);
    EXPECT_NO_THROW(fp::hit("pg.allreduce", 0)); // wrong rank
    try {
        fp::hit("pg.allreduce", 1);
        FAIL() << "die failpoint did not fire";
    } catch (const fp::RankLostError& e) {
        EXPECT_EQ(e.site(), "pg.allreduce");
        EXPECT_EQ(e.rank(), 1);
        EXPECT_NE(std::string(e.what()).find("permanently lost"),
                  std::string::npos);
    }
}

TEST_F(ElasticTest, DeclareLostConfirmLostAndRebuild)
{
    ProcessGroup group(4, ProcessGroupOptions{.timeout_ms = 5000});
    EXPECT_EQ(group.membershipGeneration(), 1);
    EXPECT_TRUE(group.lostRanks().empty());
    EXPECT_FALSE(group.confirmLost(2, 0)); // immediate check, not lost

    group.declareLost(2, "machine gone");
    EXPECT_TRUE(group.aborted()); // peers must fail fast
    EXPECT_EQ(group.lostRanks(), (std::vector<int>{2}));
    EXPECT_TRUE(group.confirmLost(2, 0));

    // The liveness deadline: a rank that is merely slow is not declared
    // within the deadline, and confirmLost says so (false) after it.
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(group.confirmLost(1, 80));
    const auto waited_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_GE(waited_ms, 70);

    // Loss declarations survive reset() (they describe the world, not
    // the aborted step); only rebuild() clears them.
    group.reset();
    EXPECT_FALSE(group.aborted());
    EXPECT_EQ(group.lostRanks(), (std::vector<int>{2}));

    group.rebuild({0, 1, 3});
    EXPECT_EQ(group.worldSize(), 3);
    EXPECT_EQ(group.membershipGeneration(), 2);
    EXPECT_TRUE(group.lostRanks().empty());
    EXPECT_FALSE(group.aborted());

    // The rebuilt group is a working 3-rank world.
    std::vector<float> sums(3);
    std::vector<std::thread> threads;
    for (int r = 0; r < 3; ++r) {
        threads.emplace_back([&, r] {
            sums[r] = group.allReduce(r, Tensor::full({1}, 1.0f)).at(0);
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    for (int r = 0; r < 3; ++r) {
        EXPECT_FLOAT_EQ(sums[r], 3.0f);
    }
}

TEST_F(ElasticTest, ConfirmLostWakesAsSoonAsTheRankIsDeclared)
{
    ProcessGroup group(2, ProcessGroupOptions{.timeout_ms = 5000});
    std::thread declarer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        group.declareLost(1, "gone");
    });
    // Deadline far above the declaration delay: must return true early.
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_TRUE(group.confirmLost(1, 10000));
    const auto waited_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_LT(waited_ms, 5000);
    declarer.join();
}

TEST_F(ElasticTest, StaleGenerationDepositRejected)
{
    ProcessGroup group(2, ProcessGroupOptions{.timeout_ms = 5000});
    group.declareLost(1, "gone");
    group.rebuild({0}); // world of one; membership generation 2

    // A (buggy) thread still pinned to the old world must not have its
    // deposit silently mixed into the rebuilt group.
    nn::DistContext stale;
    stale.rank = 0;
    stale.world_size = 2;
    stale.group = &group;
    stale.membership_generation = 1;
    nn::DistGuard guard(&stale);
    try {
        group.allReduce(0, Tensor::full({2}, 1.0f));
        FAIL() << "stale-generation deposit was accepted";
    } catch (const CollectiveError& e) {
        EXPECT_EQ(e.memberGeneration(), 1); // the depositor's stale epoch
        EXPECT_NE(std::string(e.what()).find("stale membership"),
                  std::string::npos);
    }
}

TEST_F(ElasticTest, CollectiveErrorCarriesMembershipGeneration)
{
    const CollectiveError e("pg.allreduce", 1, 7, "boom", -1, 3);
    EXPECT_EQ(e.memberGeneration(), 3);
    EXPECT_NE(std::string(e.what()).find("world gen 3"), std::string::npos);
    // Default: pre-epoch errors report 0 and don't mention an epoch.
    const CollectiveError legacy("pg.allreduce", 1, 7, "boom");
    EXPECT_EQ(legacy.memberGeneration(), 0);
    EXPECT_EQ(std::string(legacy.what()).find("world gen"),
              std::string::npos);
}

TEST_F(ElasticTest, ResetClearsAbortedWaitFromRankStats)
{
    // A rank hanging in an aborted collective accumulates wait time that
    // is pure failure artifact; reset() must subtract it so post-recovery
    // skew reports see only real waits.
    ProcessGroup group(2, ProcessGroupOptions{.timeout_ms = 60000});
    std::thread waiter([&] {
        try {
            group.allReduce(0, Tensor::full({2}, 1.0f));
        } catch (const CollectiveError&) {
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    group.abort("unit.abort", 1, "injected");
    waiter.join();

    const int64_t before = group.rankStats(0).wait_ns;
    EXPECT_GE(before, 100 * 1000 * 1000); // hung for >= ~100ms
    group.reset();
    const int64_t after = group.rankStats(0).wait_ns;
    EXPECT_LT(after, before);
    EXPECT_LT(after, 10 * 1000 * 1000); // aborted wait fully discounted
}

// --- checkpoint format v2 ---------------------------------------------------

TEST_F(ElasticTest, CheckpointV2RoundTripsWorldSize)
{
    ASSERT_EQ(kCheckpointVersion, 2u);
    const std::string dir = scratchDir("ckpt_v2");
    CheckpointState state;
    state.step = 3;
    state.optimizer_steps = 3;
    state.world_size = 4;
    state.tensors.push_back({"w", Tensor::uniform({2, 2}, 1.0f, 17)});
    const std::string path = dir + "/" + checkpointFileName(state.step);
    saveCheckpoint(path, state);
    const CheckpointState loaded = loadCheckpoint(path);
    EXPECT_EQ(loaded.world_size, 4);
    EXPECT_EQ(loaded.step, 3);
}

// --- executor shrink --------------------------------------------------------

TEST_F(ElasticTest, ExecutorShrinkRenumbersSurvivors)
{
    DistExecutor executor(4, ProcessGroupOptions{.timeout_ms = 5000});
    executor.group().declareLost(1, "gone");
    executor.group().reset();
    const std::vector<int> survivors = executor.shrink();
    EXPECT_EQ(survivors, (std::vector<int>{0, 2, 3}));
    EXPECT_EQ(executor.worldSize(), 3);
    EXPECT_EQ(executor.group().worldSize(), 3);
    EXPECT_EQ(executor.group().membershipGeneration(), 2);
    // With nobody lost, shrink is a caller bug.
    EXPECT_THROW(executor.shrink(), SlapoError);
}

// --- the acceptance scenario ------------------------------------------------

TEST_F(ElasticTest, RankDeathMidAllreduceShrinksTo3AndCompletes)
{
    // 4-rank data-parallel run; rank 2 is *permanently* lost inside the
    // gradient all-reduce of step 1 (SLAPO_FAILPOINTS syntax
    // "pg.allreduce.bucket@1:die:r2"). Training must finish all steps on
    // the 3 survivors with rank 2's shard redistributed.
    const int64_t steps = 5;
    const std::string log_path =
        scratchDir("accept_log") + "/run.jsonl";
    obs::openRunLog(log_path);

    fp::configureFromString("pg.allreduce.bucket@1:die:r2");
    AdamWConfig config;
    config.lr = 5e-3f;
    auto model = buildLossModel(55);
    DataParallelTrainer trainer(*model, 4, config,
                                elasticRecovery(scratchDir("accept_ckpt")));

    TrainRunStats stats = trainer.trainSteps(
        [](int64_t step) { return shardBatches(4, step); }, steps);
    obs::closeRunLog();

    EXPECT_EQ(stats.steps_run, steps);
    EXPECT_EQ(stats.recoveries, 1);
    EXPECT_EQ(stats.elastic_rebuilds, 1);
    EXPECT_EQ(trainer.baseWorldSize(), 4);
    EXPECT_EQ(trainer.worldSize(), 3);
    EXPECT_EQ(trainer.origRanks(), (std::vector<int>{0, 1, 3}));
    // Orphaned shard 2 went to the least-loaded, lowest-ranked survivor.
    const std::vector<std::vector<int>> expected_shards = {
        {0, 2}, {1}, {3}};
    EXPECT_EQ(trainer.shardAssignment(), expected_shards);
    EXPECT_EQ(trainer.group().membershipGeneration(), 2);

    // Survivor replicas are still in lock-step.
    const auto r0 = snapshotParams(trainer.replica(0));
    for (int r = 1; r < 3; ++r) {
        EXPECT_TRUE(snapshotsBitwiseEqual(r0, snapshotParams(trainer.replica(r))))
            << "rank " << r;
    }

    // The run log tells the story: an elastic.rebuild record naming rank
    // 2 and the world change, plus the usual recovery record.
    const auto lines = readLines(log_path);
    const std::string rebuild =
        findLine(lines, "\"kind\":\"elastic.rebuild\"");
    ASSERT_FALSE(rebuild.empty());
    EXPECT_NE(rebuild.find("\"lost_ranks\":[2]"), std::string::npos)
        << rebuild;
    EXPECT_NE(rebuild.find("\"old_world\":4"), std::string::npos);
    EXPECT_NE(rebuild.find("\"new_world\":3"), std::string::npos);
    EXPECT_NE(rebuild.find("\"generation\":2"), std::string::npos);
    EXPECT_FALSE(findLine(lines, "\"kind\":\"recovery\"").empty());
    // Post-shrink checkpoints are stamped with the shrunken world.
    EXPECT_FALSE(findLine(lines, "\"world_size\":3").empty());
}

TEST_F(ElasticTest, PostShrinkTrajectoryBitwiseIdenticalAcrossThreadCounts)
{
    // The determinism claim: repeat the whole lose-rank-2 scenario at
    // different kernel thread counts; final loss and every surviving
    // parameter must be bitwise identical.
    const int64_t steps = 4;
    auto run_scenario = [&](int threads, const std::string& tag) {
        fp::clearAll();
        setNumThreads(threads);
        fp::configureFromString("pg.allreduce.bucket@1:die:r2");
        AdamWConfig config;
        config.lr = 5e-3f;
        auto model = buildLossModel(56);
        DataParallelTrainer trainer(
            *model, 4, config, elasticRecovery(scratchDir("det_" + tag)));
        TrainRunStats stats = trainer.trainSteps(
            [](int64_t step) { return shardBatches(4, step); }, steps);
        EXPECT_EQ(trainer.worldSize(), 3);
        return std::make_pair(stats.last.loss,
                              snapshotParams(trainer.replica(0)));
    };
    const auto [loss_a, params_a] = run_scenario(1, "t1");
    const auto [loss_b, params_b] = run_scenario(4, "t4");
    setNumThreads(0);
    EXPECT_EQ(loss_a, loss_b); // exact double equality, not near
    EXPECT_TRUE(snapshotsBitwiseEqual(params_a, params_b));
}

// --- deaths at every arrow of the state machine -----------------------------

TEST_F(ElasticTest, DeathDuringRendezvousShrinksAgain)
{
    // Rank 2 dies at step 1; while the 3 survivors run the rebuild
    // rendezvous, new-rank 1 (original rank 1) dies too. The state
    // machine must loop — shrink again — and finish on a world of 2.
    const int64_t steps = 5;
    const std::string log_path =
        scratchDir("rendezvous_log") + "/run.jsonl";
    obs::openRunLog(log_path);
    fp::configureFromString(
        "pg.allreduce.bucket@1:die:r2;elastic.rendezvous@0:die:r1");
    auto model = buildLossModel(57);
    DataParallelTrainer trainer(
        *model, 4, AdamWConfig{},
        elasticRecovery(scratchDir("rendezvous_ckpt")));
    TrainRunStats stats = trainer.trainSteps(
        [](int64_t step) { return shardBatches(4, step); }, steps);
    obs::closeRunLog();

    EXPECT_EQ(stats.steps_run, steps);
    EXPECT_EQ(stats.elastic_rebuilds, 1); // one handler pass, two rounds
    EXPECT_EQ(trainer.worldSize(), 2);
    EXPECT_EQ(trainer.origRanks(), (std::vector<int>{0, 3}));
    const std::vector<std::vector<int>> expected_shards = {{0, 2}, {1, 3}};
    EXPECT_EQ(trainer.shardAssignment(), expected_shards);
    EXPECT_EQ(trainer.group().membershipGeneration(), 3);

    const std::string rebuild = findLine(
        readLines(log_path), "\"kind\":\"elastic.rebuild\"");
    ASSERT_FALSE(rebuild.empty());
    EXPECT_NE(rebuild.find("\"lost_ranks\":[1,2]"), std::string::npos)
        << rebuild;
    EXPECT_NE(rebuild.find("\"old_world\":4"), std::string::npos);
    EXPECT_NE(rebuild.find("\"new_world\":2"), std::string::npos);
}

TEST_F(ElasticTest, DeathDuringCheckpointRestoreShrinksAndCompletes)
{
    // An ordinary step failure sends every rank into the parallel
    // checkpoint restore — where rank 2 dies for good. The handler must
    // classify the new loss, shrink, and re-run the restore on the
    // survivors.
    const int64_t steps = 4;
    fp::configureFromString(
        "dp_trainer.step@1:throw;elastic.restore@0:die:r2");
    auto model = buildLossModel(58);
    DataParallelTrainer trainer(*model, 4, AdamWConfig{},
                                elasticRecovery(scratchDir("restore_ckpt")));
    TrainRunStats stats = trainer.trainSteps(
        [](int64_t step) { return shardBatches(4, step); }, steps);
    EXPECT_EQ(stats.steps_run, steps);
    EXPECT_EQ(stats.elastic_rebuilds, 1);
    EXPECT_EQ(trainer.worldSize(), 3);
    EXPECT_EQ(trainer.origRanks(), (std::vector<int>{0, 1, 3}));
}

TEST_F(ElasticTest, TwoSequentialLossesShrinkTwice)
{
    // Two separate loss events in one run: rank 3 dies at step 1; after
    // that recovery, (new) rank 1 dies a few steps later. 4 → 3 → 2.
    const int64_t steps = 6;
    const std::string log_path =
        scratchDir("sequential_log") + "/run.jsonl";
    obs::openRunLog(log_path);
    fp::configureFromString(
        "pg.allreduce.bucket@1:die:r3;pg.allreduce.bucket@4:die:r1");
    auto model = buildLossModel(59);
    DataParallelTrainer trainer(
        *model, 4, AdamWConfig{},
        elasticRecovery(scratchDir("sequential_ckpt")));
    TrainRunStats stats = trainer.trainSteps(
        [](int64_t step) { return shardBatches(4, step); }, steps);
    obs::closeRunLog();

    EXPECT_EQ(stats.steps_run, steps);
    EXPECT_EQ(stats.recoveries, 2);
    EXPECT_EQ(stats.elastic_rebuilds, 2);
    EXPECT_EQ(trainer.worldSize(), 2);
    EXPECT_EQ(trainer.origRanks(), (std::vector<int>{0, 2}));
    EXPECT_EQ(trainer.group().membershipGeneration(), 3);
    // Every shard is still owned exactly once.
    std::vector<int> owned;
    for (const auto& shards : trainer.shardAssignment()) {
        owned.insert(owned.end(), shards.begin(), shards.end());
    }
    std::sort(owned.begin(), owned.end());
    EXPECT_EQ(owned, (std::vector<int>{0, 1, 2, 3}));

    // One elastic.rebuild record per loss event.
    const auto lines = readLines(log_path);
    int rebuilds = 0;
    for (const std::string& line : lines) {
        if (line.find("\"kind\":\"elastic.rebuild\"") != std::string::npos) {
            ++rebuilds;
        }
    }
    EXPECT_EQ(rebuilds, 2);
}

// --- restore-attempt exhaustion ---------------------------------------------

TEST_F(ElasticTest, GiveupRecordAfterExhaustedRestoreAttempts)
{
    // No checkpoint was ever written (checkpoint_every = 0, empty dir):
    // every restore sweep comes up dry, the deterministic backoff runs
    // its course, and trainSteps rethrows after a recovery.giveup
    // record.
    const std::string log_path = scratchDir("giveup_log") + "/run.jsonl";
    obs::openRunLog(log_path);
    RecoveryOptions recovery;
    recovery.checkpoint_every = 0;
    recovery.checkpoint_dir = scratchDir("giveup_ckpt");
    recovery.max_retries = 2;
    recovery.max_restore_attempts = 3;
    recovery.restore_backoff_ms = 30;
    auto model = buildLossModel(60);
    Trainer trainer(model, AdamWConfig{}, recovery);
    fp::Spec crash;
    crash.at = 1;
    fp::enable("trainer.step", crash);

    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_THROW(
        trainer.trainSteps([](int64_t s) { return shardBatches(1, s); }, 3),
        fp::FailpointError);
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    obs::closeRunLog();
    // Sweeps 2 and 3 waited 30ms and 60ms (30 << 1): deterministic, no
    // jitter.
    EXPECT_GE(elapsed_ms, 90);

    const std::string giveup = findLine(
        readLines(log_path), "\"kind\":\"recovery.giveup\"");
    ASSERT_FALSE(giveup.empty());
    EXPECT_NE(giveup.find("\"restore_attempts\":3"), std::string::npos)
        << giveup;
    EXPECT_NE(giveup.find("\"failed_step\":1"), std::string::npos);
}

// --- memory attribution across an elastic shrink ----------------------------

TEST_F(ElasticTest, MemAttributionSurvivesShrinkWithoutLeaks)
{
    // With the memory profiler on, the lose-rank-2 scenario must
    // (a) re-attribute every survivor replica's parameters to its
    // post-rebuild rank index and (b) leave no orphaned registry
    // entries for tensors freed during the abort/drain — when the
    // trainer is gone, the registry is back to its pre-scenario state.
    obs::setMemProfilingEnabled(true);
    {
        // Warm up function-local statics (e.g. the no-bias placeholder
        // in nn::functional) so they don't read as leaks below.
        auto warm = buildLossModel(1);
        DataParallelTrainer warm_trainer(*warm, 2);
        warm_trainer.trainSteps(
            [](int64_t step) { return shardBatches(2, step); }, 1);
    }
    obs::memProfilerReset();
    const int64_t entries_before = obs::memRegistrySize();
    const int64_t live_before = obs::memLiveBytes();

    {
        fp::configureFromString("pg.allreduce.bucket@1:die:r2");
        AdamWConfig config;
        config.lr = 5e-3f;
        auto model = buildLossModel(77);
        DataParallelTrainer trainer(
            *model, 4, config, elasticRecovery(scratchDir("mem_ckpt")));

        TrainRunStats stats = trainer.trainSteps(
            [](int64_t step) { return shardBatches(4, step); }, 3);
        EXPECT_EQ(stats.steps_run, 3);
        EXPECT_EQ(stats.elastic_rebuilds, 1);
        ASSERT_EQ(trainer.worldSize(), 3);

        // Every survivor's parameters now carry the *new* rank index.
        for (int r = 0; r < 3; ++r) {
            for (auto& [path, tensor] : trainer.replica(r).namedParams()) {
                ASSERT_TRUE(tensor->materialized()) << path;
                obs::MemTensorRow row;
                ASSERT_TRUE(obs::memLookup(tensor->storageKey(), &row))
                    << "rank " << r << " param " << path
                    << " missing from the registry";
                EXPECT_EQ(row.rank, r) << "rank " << r << " param " << path;
                EXPECT_EQ(row.category, obs::MemCategory::Parameter) << path;
            }
        }
    }

    // Trainer, replicas, and inputs destroyed: every entry they
    // registered — including tensors freed mid-abort — is gone.
    EXPECT_EQ(obs::memRegistrySize(), entries_before);
    EXPECT_EQ(obs::memLiveBytes(), live_before);
    obs::setMemProfilingEnabled(false);
    obs::memProfilerReset();
}

TEST_F(ElasticTest, MemRegistryCleanAfterAbortedStepWithoutShrink)
{
    // A non-elastic failure path (retry at the same world size): the
    // aborted step's partially-built tensors must unregister as they
    // unwind — no stale entries accumulate across retries.
    obs::setMemProfilingEnabled(true);
    {
        // Warm up function-local statics (see above).
        auto warm = buildLossModel(1);
        DataParallelTrainer warm_trainer(*warm, 2);
        warm_trainer.trainSteps(
            [](int64_t step) { return shardBatches(2, step); }, 1);
    }
    obs::memProfilerReset();
    const int64_t entries_before = obs::memRegistrySize();

    {
        fp::configureFromString("dp_trainer.step@1:throw");
        AdamWConfig config;
        auto model = buildLossModel(88);
        RecoveryOptions recovery;
        recovery.checkpoint_every = 1;
        recovery.checkpoint_dir = scratchDir("mem_retry_ckpt");
        recovery.max_retries = 2;
        DataParallelTrainer trainer(*model, 2, config, recovery);
        TrainRunStats stats = trainer.trainSteps(
            [](int64_t step) { return shardBatches(2, step); }, 3);
        EXPECT_EQ(stats.steps_run, 3);
        EXPECT_GE(stats.recoveries, 1);
    }

    EXPECT_EQ(obs::memRegistrySize(), entries_before);
    obs::setMemProfilingEnabled(false);
    obs::memProfilerReset();
}

} // namespace
} // namespace runtime
} // namespace slapo
