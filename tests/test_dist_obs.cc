/**
 * @file
 * Distributed telemetry tests (docs/OBSERVABILITY.md): the collective
 * flight recorder (ring semantics, stall analysis, failpoint-induced
 * hang dumps, the watchdog), bit-exact int64 packing for cross-rank
 * metric aggregation, and the run-log integration of the data-parallel
 * trainer. The acceptance bar: a hung collective must produce a JSON
 * dump that names the stuck site and the rank that never arrived.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <thread>
#include <vector>

#include "json_validator.h"
#include "models/registry.h"
#include "nn/layers.h"
#include "obs/dist_metrics.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/run_log.h"
#include "runtime/dist_executor.h"
#include "runtime/trainer.h"
#include "support/failpoint.h"

namespace slapo {
namespace runtime {
namespace {

namespace fp = support::failpoint;
using nn::ModulePtr;
using testutil::JsonValidator;

/** Fresh scratch file path under the gtest temp root. */
std::string
scratchFile(const std::string& name)
{
    const auto path =
        std::filesystem::path(::testing::TempDir()) / ("slapo_" + name);
    std::filesystem::remove(path);
    return path.string();
}

std::vector<std::string>
readLines(const std::string& path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty()) lines.push_back(line);
    }
    return lines;
}

ModulePtr
buildLossModel(uint64_t seed)
{
    auto model = withCrossEntropyLoss(models::buildTinyModel("bert"));
    model->initializeParams(seed);
    return model;
}

std::vector<std::vector<Tensor>>
rankBatches(int world, int64_t step)
{
    std::vector<std::vector<Tensor>> per_rank;
    for (int64_t r = 0; r < world; ++r) {
        per_rank.push_back(
            {Tensor::randint({1, 8}, 64, 3000 + 10 * step + r),
             Tensor::randint({1, 8}, 64, 4000 + 10 * step + r)});
    }
    return per_rank;
}

/** Dist-obs tests redirect automatic flight dumps to a scratch file and
 * must leave the process-wide dump path and failpoints clean. */
class DistObsTest : public ::testing::Test
{
  protected:
    void SetUp() override { fp::clearAll(); }

    void
    TearDown() override
    {
        fp::clearAll();
        obs::stopWatchdog();
        obs::setFlightDumpPath("");
        obs::closeRunLog();
    }
};

// --- flight recorder unit semantics -----------------------------------------

TEST_F(DistObsTest, RecorderTracksStallWaitingAndMissingRanks)
{
    obs::FlightRecorder recorder(3);
    const int64_t dims[2] = {4, 8};

    // Collective 1 completes on all ranks.
    for (int r = 0; r < 3; ++r) {
        const int64_t token = recorder.begin(r, "pg.allreduce", dims, 2);
        recorder.end(r, token);
    }
    obs::FlightAnalysis a = recorder.analyze();
    EXPECT_FALSE(a.stalled);
    EXPECT_EQ(a.last_completed, (std::vector<int64_t>{1, 1, 1}));

    // Collective 2: rank 0 enters and blocks, rank 1 sails through,
    // rank 2 never arrives.
    const int64_t stuck_token =
        recorder.begin(0, "pg.allgather", dims, 2);
    const int64_t done_token = recorder.begin(1, "pg.allgather", dims, 2);
    recorder.end(1, done_token);

    a = recorder.analyze();
    EXPECT_TRUE(a.stalled);
    EXPECT_EQ(a.stuck_site, "pg.allgather");
    EXPECT_EQ(a.stuck_seq, 2);
    EXPECT_EQ(a.waiting_ranks, (std::vector<int>{0}));
    EXPECT_EQ(a.missing_ranks, (std::vector<int>{2}));
    EXPECT_EQ(a.last_started, (std::vector<int64_t>{2, 2, 1}));
    EXPECT_EQ(a.last_completed, (std::vector<int64_t>{1, 2, 1}));

    // An aborted exit clears the stall but never counts as completed.
    recorder.end(0, stuck_token, /*aborted=*/true);
    a = recorder.analyze();
    EXPECT_FALSE(a.stalled);
    EXPECT_EQ(a.last_completed[0], 1);
}

TEST_F(DistObsTest, RingRetainsOnlyTheLastCapacityEvents)
{
    obs::FlightRecorder recorder(1, /*capacity=*/4);
    const int64_t dims[1] = {16};
    for (int i = 0; i < 10; ++i) {
        const int64_t token = recorder.begin(0, "pg.allreduce", dims, 1);
        recorder.end(0, token);
    }
    const auto events = recorder.events();
    ASSERT_EQ(events.size(), 4u);
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].seq, 7 + static_cast<int64_t>(i));
        EXPECT_GT(events[i].exit_ns, 0); // all done
        EXPECT_EQ(events[i].shape, (std::vector<int64_t>{16}));
    }
}

TEST_F(DistObsTest, DumpJsonIsValidAndNamesTheVerdict)
{
    obs::FlightRecorder recorder(2);
    recorder.setLabel("test-group");
    const int64_t dims[1] = {3};
    recorder.begin(0, "pg.broadcast", dims, 1); // rank 1 never arrives

    const std::string dump = recorder.dumpJson();
    EXPECT_TRUE(JsonValidator(dump).valid()) << dump;
    EXPECT_NE(dump.find("\"label\":\"test-group\""), std::string::npos);
    EXPECT_NE(dump.find("\"stalled\":true"), std::string::npos);
    EXPECT_NE(dump.find("\"stuck_site\":\"pg.broadcast\""),
              std::string::npos);
    EXPECT_NE(dump.find("\"missing_ranks\":[1]"), std::string::npos);
    EXPECT_NE(dump.find("\"state\":\"in_flight\""), std::string::npos);

    // dumpFlightRecorder() covers every live recorder, ours included.
    const std::string all = obs::dumpFlightRecorder();
    EXPECT_NE(all.find("test-group"), std::string::npos);
}

// --- failpoint-induced hang: automatic dump on timeout ----------------------

TEST_F(DistObsTest, TimeoutDumpNamesStuckSiteAndNonArrivingRank)
{
    // Acceptance: rank 1 is delayed *before* it reaches the collective
    // (the failpoint fires at the entry site), rank 0 times out inside
    // pg.allreduce — the automatic dump must name the stuck site, the
    // waiting rank, and the rank that never arrived.
    const std::string dump_path = scratchFile("flight_timeout.json");
    obs::setFlightDumpPath(dump_path);

    fp::Spec delay;
    delay.at = 0;
    delay.action = fp::Action::Delay;
    delay.delay_ms = 800;
    delay.rank = 1;
    fp::enable("pg.allreduce", delay);

    DistExecutor executor(2, ProcessGroupOptions{.timeout_ms = 150});
    std::vector<ModulePtr> replicas;
    for (int r = 0; r < 2; ++r) {
        replicas.push_back(std::make_shared<nn::Sequential>());
    }
    EXPECT_THROW(
        executor.run(replicas,
                     [&](int rank, nn::Module&, ProcessGroup& group) {
                         group.allReduce(rank, Tensor::full({4}, 1.0f));
                     }),
        CollectiveError);

    const auto lines = readLines(dump_path);
    ASSERT_EQ(lines.size(), 1u) << "one failure, one dump";
    const std::string& dump = lines[0];
    EXPECT_TRUE(JsonValidator(dump).valid()) << dump;
    EXPECT_NE(dump.find("\"stalled\":true"), std::string::npos) << dump;
    EXPECT_NE(dump.find("\"stuck_site\":\"pg.allreduce\""),
              std::string::npos)
        << dump;
    EXPECT_NE(dump.find("\"stuck_seq\":1"), std::string::npos) << dump;
    EXPECT_NE(dump.find("\"waiting_ranks\":[0]"), std::string::npos)
        << dump;
    EXPECT_NE(dump.find("\"missing_ranks\":[1]"), std::string::npos)
        << dump;

    // Post-mortem: the group's recorder still holds the events after the
    // executor reset the group (rings survive reset; only the dump latch
    // is re-armed).
    const auto events = executor.group().flightRecorder().events();
    EXPECT_FALSE(events.empty());
}

TEST_F(DistObsTest, WatchdogDumpsACollectiveExceedingItsDeadline)
{
    const std::string dump_path = scratchFile("flight_watchdog.json");
    obs::setFlightDumpPath(dump_path);

    obs::FlightRecorder recorder(2);
    recorder.setLabel("watchdog-group");
    const int64_t dims[1] = {8};
    const int64_t token = recorder.begin(0, "pg.reducescatter", dims, 1);

    obs::startWatchdog(50);
    // Give the watchdog several scan periods past the deadline.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    obs::stopWatchdog();
    recorder.end(0, token, /*aborted=*/true);

    const auto lines = readLines(dump_path);
    ASSERT_EQ(lines.size(), 1u)
        << "the watchdog dumps once per stuck collective, not per scan";
    EXPECT_TRUE(JsonValidator(lines[0]).valid()) << lines[0];
    EXPECT_NE(lines[0].find("\"label\":\"watchdog-group\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"stuck_site\":\"pg.reducescatter\""),
              std::string::npos)
        << lines[0];
    EXPECT_NE(lines[0].find("\"missing_ranks\":[1]"), std::string::npos)
        << lines[0];
}

// --- cross-rank metric aggregation ------------------------------------------

TEST_F(DistObsTest, PackUnpackRoundTripsTheFullInt64Range)
{
    const std::vector<int64_t> values = {
        0,
        1,
        -1,
        65535,
        65536,
        -123456789012345,
        123456789012345,
        std::numeric_limits<int64_t>::max(),
        std::numeric_limits<int64_t>::min(),
    };
    const std::vector<float> packed = obs::packInt64s(values);
    ASSERT_EQ(packed.size(), values.size() * obs::kFloatsPerInt64);
    // Every chunk must be exactly representable in a float32.
    for (const float f : packed) {
        EXPECT_GE(f, 0.0f);
        EXPECT_LE(f, 65535.0f);
        EXPECT_EQ(f, static_cast<float>(static_cast<uint32_t>(f)));
    }
    const std::vector<int64_t> round =
        obs::unpackInt64s(packed.data(), values.size());
    EXPECT_EQ(round, values);
}

TEST_F(DistObsTest, DistMetricsReportAggregatesMinMaxMeanSpread)
{
    const std::vector<std::string> names = {"pg.wait_ns", "pg.count"};
    const std::vector<std::vector<int64_t>> per_rank = {
        {100, 4}, {300, 4}, {200, 4}};
    const obs::DistMetricsReport report =
        obs::buildDistMetricsReport(names, per_rank);

    ASSERT_EQ(report.stats.size(), 2u);
    EXPECT_EQ(report.world_size, 3);
    EXPECT_EQ(report.stats[0].min, 100);
    EXPECT_EQ(report.stats[0].max, 300);
    EXPECT_DOUBLE_EQ(report.stats[0].mean, 200.0);
    EXPECT_EQ(report.stats[0].spread, 200);
    EXPECT_EQ(report.stats[1].spread, 0); // no skew

    const std::string json = report.toJson();
    EXPECT_TRUE(JsonValidator(json).valid()) << json;
    EXPECT_NE(json.find("\"kind\":\"dist_metrics\""), std::string::npos);
}

TEST_F(DistObsTest, GatherMetricsMovesPerRankCountersThroughTheGroup)
{
    auto model = buildLossModel(7);
    DataParallelTrainer trainer(*model, 2);
    trainer.step(rankBatches(2, 0));

    const obs::DistMetricsReport report = trainer.gatherMetrics();
    EXPECT_EQ(report.world_size, 2);
    ASSERT_EQ(report.stats.size(), obs::distMetricNames().size());
    for (const obs::DistMetricStat& stat : report.stats) {
        ASSERT_EQ(stat.per_rank.size(), 2u) << stat.name;
        EXPECT_LE(stat.min, stat.max) << stat.name;
        EXPECT_GE(stat.mean, static_cast<double>(stat.min)) << stat.name;
        EXPECT_LE(stat.mean, static_cast<double>(stat.max)) << stat.name;
        EXPECT_EQ(stat.spread, stat.max - stat.min) << stat.name;
    }
    // Both ranks all-reduced one gradient per parameter, in lock-step.
    const obs::DistMetricStat& count = report.stats[0];
    ASSERT_EQ(count.name, "pg.count");
    EXPECT_GT(count.min, 0);
    EXPECT_EQ(count.spread, 0);
    EXPECT_TRUE(JsonValidator(report.toJson()).valid());
}

// --- run-log integration -----------------------------------------------------

TEST_F(DistObsTest, DataParallelRunEmitsStepAndDistMetricsRecords)
{
    const std::string log_path = scratchFile("dp_run.jsonl");
    obs::openRunLog(log_path);

    auto model = buildLossModel(11);
    DataParallelTrainer trainer(*model, 2);
    trainer.trainSteps([](int64_t step) { return rankBatches(2, step); },
                       3);
    obs::closeRunLog();

    const auto lines = readLines(log_path);
    int steps = 0;
    int dist_metrics = 0;
    for (const std::string& line : lines) {
        EXPECT_TRUE(JsonValidator(line).valid()) << line;
        if (line.find("\"kind\":\"step\"") != std::string::npos) {
            ++steps;
            EXPECT_NE(line.find("\"world_size\":2"), std::string::npos)
                << line;
            EXPECT_NE(line.find("\"grad_norm\":"), std::string::npos);
            EXPECT_NE(line.find("\"tokens_per_s\":"), std::string::npos);
            EXPECT_NE(line.find("\"anomaly_nan\":false"),
                      std::string::npos);
        }
        if (line.find("\"kind\":\"dist_metrics\"") != std::string::npos) {
            ++dist_metrics;
            EXPECT_NE(line.find("\"per_rank\":"), std::string::npos);
        }
    }
    EXPECT_EQ(steps, 3);
    EXPECT_EQ(dist_metrics, 1);
}

} // namespace
} // namespace runtime
} // namespace slapo
