/**
 * @file
 * Observability subsystem tests (docs/OBSERVABILITY.md): Chrome-trace
 * span recording (nesting, multi-thread emission, JSON validity,
 * disabled fast path), the per-op aggregate profiler against
 * hand-counted node executions, always-on metrics, and the
 * elapsed-wait annotation on CollectiveError.
 */
#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <thread>
#include <vector>

#include "json_validator.h"
#include "nn/layers.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/run_log.h"
#include "obs/trace.h"
#include "runtime/autograd.h"
#include "support/error.h"
#include "tensor/tensor.h"

namespace slapo {
namespace {

using testutil::JsonValidator; // tests/json_validator.h

/** The dump line of the first 'X' event named `name` ("" if absent). */
std::string
eventLine(const std::string& dump, const std::string& name)
{
    const std::string needle = "{\"name\":\"" + name + "\"";
    size_t at = 0;
    while ((at = dump.find(needle, at)) != std::string::npos) {
        const size_t end = dump.find('\n', at);
        std::string line = dump.substr(at, end - at);
        if (line.find("\"ph\":\"X\"") != std::string::npos) {
            return line;
        }
        at += needle.size();
    }
    return "";
}

/** Parse `"key":<number>` out of an event line. */
double
numField(const std::string& line, const char* key)
{
    const std::string needle = std::string("\"") + key + "\":";
    const size_t at = line.find(needle);
    EXPECT_NE(at, std::string::npos) << key << " missing in " << line;
    if (at == std::string::npos) return -1;
    return std::atof(line.c_str() + at + needle.size());
}

int
countOccurrences(const std::string& text, const std::string& needle)
{
    int n = 0;
    for (size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + needle.size())) {
        ++n;
    }
    return n;
}

// --- trace recorder --------------------------------------------------------

TEST(Trace, DisabledPathIsNoOp)
{
    ASSERT_FALSE(obs::tracingEnabled());
    obs::clearTrace();
    {
        obs::TraceSpan span("never.recorded", "test");
        EXPECT_FALSE(span.live());
        span.arg("ignored", static_cast<int64_t>(1));
    }
    obs::traceCounter("never.counted", 7);
    EXPECT_EQ(obs::stopTracing(), 0);
    const std::string dump = obs::dumpTraceJson();
    EXPECT_EQ(dump.find("never.recorded"), std::string::npos);
    EXPECT_EQ(dump.find("never.counted"), std::string::npos);
}

TEST(Trace, SpansNestCorrectly)
{
    obs::startTracing();
    {
        obs::TraceSpan outer("outer.span", "test");
        EXPECT_TRUE(outer.live());
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        {
            obs::TraceSpan inner("inner.span", "test");
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    obs::stopTracing();
    const std::string dump = obs::dumpTraceJson();

    const std::string outer = eventLine(dump, "outer.span");
    const std::string inner = eventLine(dump, "inner.span");
    ASSERT_FALSE(outer.empty()) << dump;
    ASSERT_FALSE(inner.empty()) << dump;
    const double outer_ts = numField(outer, "ts");
    const double outer_dur = numField(outer, "dur");
    const double inner_ts = numField(inner, "ts");
    const double inner_dur = numField(inner, "dur");
    // The inner span opens after and closes before the outer one.
    EXPECT_GE(inner_ts, outer_ts);
    EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur);
    EXPECT_GE(outer_dur, inner_dur);
}

TEST(Trace, DumpIsValidChromeTraceJson)
{
    obs::startTracing();
    {
        // Dynamic name with characters that need escaping.
        obs::TraceSpan span(std::string("weird \"name\"\nwith\tescapes"),
                            "test");
        span.arg("str", std::string("value with \"quotes\""));
        span.arg("num", static_cast<int64_t>(-42));
    }
    obs::traceCounter("test.counter", 5);
    obs::stopTracing();
    const std::string dump = obs::dumpTraceJson();

    EXPECT_TRUE(JsonValidator(dump).valid()) << dump;
    EXPECT_NE(dump.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(dump.find("\"ph\":\"M\""), std::string::npos); // metadata rows
    EXPECT_NE(dump.find("\"ph\":\"X\""), std::string::npos); // complete spans
    EXPECT_NE(dump.find("\"ph\":\"C\""), std::string::npos); // counters
    EXPECT_NE(dump.find("\"process_name\""), std::string::npos);
    EXPECT_NE(dump.find("\"thread_name\""), std::string::npos);
}

TEST(Trace, MultiThreadEmissionIsRaceFree)
{
    constexpr int kThreads = 4;
    constexpr int kSpansPerThread = 500;
    obs::startTracing();
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            obs::setThreadTrack(0, "emitter " + std::to_string(t));
            for (int i = 0; i < kSpansPerThread; ++i) {
                obs::TraceSpan span("mt.span", "test");
                span.arg("i", static_cast<int64_t>(i));
                obs::traceCounter("mt.counter", i);
            }
        });
    }
    // Concurrent dump while the emitters are running: must be safe.
    (void)obs::dumpTraceJson();
    for (auto& t : threads) {
        t.join();
    }
    const int64_t events = obs::stopTracing();
    EXPECT_GE(events, static_cast<int64_t>(2 * kThreads * kSpansPerThread));
    const std::string dump = obs::dumpTraceJson();
    EXPECT_TRUE(JsonValidator(dump).valid());
    EXPECT_EQ(countOccurrences(dump, "{\"name\":\"mt.span\""),
              kThreads * kSpansPerThread);
    EXPECT_EQ(countOccurrences(dump, "{\"name\":\"mt.counter\""),
              kThreads * kSpansPerThread);
}

TEST(Trace, StartClearsPreviousEvents)
{
    obs::startTracing();
    { obs::TraceSpan span("first.trace", "test"); }
    obs::stopTracing();
    obs::startTracing();
    { obs::TraceSpan span("second.trace", "test"); }
    obs::stopTracing();
    const std::string dump = obs::dumpTraceJson();
    EXPECT_EQ(dump.find("first.trace"), std::string::npos);
    EXPECT_NE(dump.find("second.trace"), std::string::npos);
    obs::clearTrace();
}

// --- per-op profiler -------------------------------------------------------

/** The stats row for (op, module) or a zeroed row if absent. */
obs::OpStats
statsFor(const obs::OpProfiler& profiler, const std::string& op,
         const std::string& module)
{
    for (const obs::OpStats& s : profiler.report()) {
        if (s.op == op && s.module_path == module) {
            return s;
        }
    }
    return {};
}

TEST(OpProfiler, AggregatesMatchHandCountedNodeExecutions)
{
    // withMseLoss(Linear): the loss wrapper's graph is exactly one
    // CallModule ("model" -> linear once traced) plus one mse_loss op.
    // Per engine.run: 1 linear + 1 mse_loss forward, and the same two
    // backward (.bwd). Three runs => count 3 for each.
    auto model = runtime::withMseLoss(std::make_shared<nn::Linear>(3, 1));
    model->initializeParams(7);

    obs::OpProfiler profiler;
    constexpr int kRuns = 3;
    {
        obs::OpProfilerGuard guard(&profiler);
        for (int i = 0; i < kRuns; ++i) {
            runtime::AutogradEngine engine;
            engine.run(*model, {Tensor::full({2, 3}, 0.5f),
                                Tensor::full({2, 1}, 1.0f)});
        }
    }

    EXPECT_EQ(statsFor(profiler, "linear", "model").count, kRuns);
    EXPECT_EQ(statsFor(profiler, "mse_loss", "").count, kRuns);
    EXPECT_EQ(statsFor(profiler, "linear.bwd", "model").count, kRuns);
    EXPECT_EQ(statsFor(profiler, "mse_loss.bwd", "").count, kRuns);

    // Nothing recorded outside the guard.
    profiler.clear();
    runtime::AutogradEngine engine;
    engine.run(*model,
               {Tensor::full({2, 3}, 0.5f), Tensor::full({2, 1}, 1.0f)});
    EXPECT_TRUE(profiler.report().empty());
}

TEST(OpProfiler, MeanExactAndP99WithinHistogramError)
{
    obs::OpProfiler profiler;
    for (int i = 0; i < 100; ++i) {
        profiler.record("op", "", 1000);
    }
    const obs::OpStats s = statsFor(profiler, "op", "");
    EXPECT_EQ(s.count, 100);
    EXPECT_EQ(s.total_ns, 100000);
    EXPECT_DOUBLE_EQ(s.mean_ns, 1000.0);
    // p99 reports the log-bucket upper bound: within 25% above the truth.
    EXPECT_GE(s.p99_ns, 1000);
    EXPECT_LE(s.p99_ns, 1250);

    const std::string table = profiler.table();
    EXPECT_NE(table.find("op"), std::string::npos);
    EXPECT_NE(table.find("(root)"), std::string::npos);
    EXPECT_TRUE(JsonValidator(profiler.toJson()).valid());
}

TEST(OpProfiler, ModuleScopeOnlyTracksWhenActive)
{
    ASSERT_EQ(obs::OpProfiler::current(), nullptr);
    ASSERT_FALSE(obs::tracingEnabled());
    {
        obs::ModuleScope scope("ignored");
        EXPECT_EQ(obs::ModuleScope::currentPath(), "");
    }
    obs::OpProfiler profiler;
    obs::OpProfilerGuard guard(&profiler);
    obs::ModuleScope outer("encoder");
    EXPECT_EQ(obs::ModuleScope::currentPath(), "encoder");
    {
        obs::ModuleScope inner("layer.0");
        EXPECT_EQ(obs::ModuleScope::currentPath(), "encoder.layer.0");
    }
    EXPECT_EQ(obs::ModuleScope::currentPath(), "encoder");
}

// --- metrics ---------------------------------------------------------------

TEST(Metrics, TensorStorageAccounting)
{
    obs::Metrics& m = obs::metrics();
    const int64_t allocated_before = m.tensor_allocated_bytes.get();
    const int64_t live_before = m.tensor_live_bytes.get();
    {
        Tensor t = Tensor::zeros({256});
        EXPECT_GE(m.tensor_allocated_bytes.get(),
                  allocated_before + 256 * static_cast<int64_t>(sizeof(float)));
        EXPECT_GE(m.tensor_live_bytes.get(),
                  live_before + 256 * static_cast<int64_t>(sizeof(float)));
    }
    EXPECT_EQ(m.tensor_live_bytes.get(), live_before);
    EXPECT_GE(m.tensor_live_bytes.peak(),
              live_before + 256 * static_cast<int64_t>(sizeof(float)));
}

TEST(Metrics, SnapshotAndJson)
{
    obs::Metrics& m = obs::metrics();
    Tensor warm = Tensor::zeros({8}); // each ctest case is a fresh process
    const auto snapshot = m.snapshot();
    ASSERT_FALSE(snapshot.empty());
    bool found = false;
    for (const auto& [name, value] : snapshot) {
        if (name == "tensor.allocated_bytes") {
            found = true;
            EXPECT_GT(value, 0);
        }
    }
    EXPECT_TRUE(found);
    EXPECT_TRUE(JsonValidator(m.toJson()).valid());
}

// --- CollectiveError wait annotation ---------------------------------------

TEST(CollectiveErrorWait, MessageIncludesElapsedWait)
{
    CollectiveError with_wait("pg.allreduce", 1, 7, "timed out", 123);
    EXPECT_NE(std::string(with_wait.what()).find("[this rank waited 123ms]"),
              std::string::npos)
        << with_wait.what();
    EXPECT_EQ(with_wait.waitedMs(), 123);

    CollectiveError without("pg.allreduce", 1, 7, "shape mismatch");
    EXPECT_EQ(std::string(without.what()).find("waited"), std::string::npos)
        << without.what();
    EXPECT_EQ(without.waitedMs(), -1);
}

// --- scoped/resettable metrics ----------------------------------------------

TEST(MetricsScoping, SnapshotAndResetZerosForTheNextWindow)
{
    obs::Metrics& m = obs::metrics();
    m.reset();
    m.pg_count.add(3);
    m.pg_wait_ns.add(500);

    auto first = m.snapshotAndReset();
    int64_t pg_count = -1;
    for (const auto& [name, value] : first) {
        if (name == "pg.count") pg_count = value;
    }
    EXPECT_EQ(pg_count, 3);

    // The next window starts from zero.
    for (const auto& [name, value] : m.snapshot()) {
        if (name == "pg.count" || name == "pg.wait_ns") {
            EXPECT_EQ(value, 0) << name;
        }
    }
}

TEST(MetricsScoping, MetricsDeltaSeesOnlyItsOwnWindow)
{
    obs::Metrics& m = obs::metrics();
    m.pg_count.add(7); // pre-window noise the delta must not see

    obs::MetricsDelta window;
    m.pg_count.add(2);
    m.checkpoint_write_bytes.add(100);
    EXPECT_EQ(window.get("pg.count"), 2);
    EXPECT_EQ(window.get("checkpoint.write_bytes"), 100);
    // Unknown names are zero, not an error.
    EXPECT_EQ(window.get("no.such.metric"), 0);
}

// --- structured run log ------------------------------------------------------

namespace fs = std::filesystem;

std::string
runLogScratch(const std::string& name)
{
    const auto path = fs::path(::testing::TempDir()) / name;
    fs::remove(path);
    return path.string();
}

std::vector<std::string>
readLines(const std::string& path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty()) lines.push_back(line);
    }
    return lines;
}

TEST(RunLog, WritesValidJsonlWithDerivedAnomalyFlags)
{
    const std::string path = runLogScratch("runlog_unit.jsonl");
    obs::RunLog log(path);
    ASSERT_TRUE(log.good());

    // Steady losses, then a spike, then a NaN.
    obs::StepRecord step;
    for (int i = 0; i < 5; ++i) {
        step.step = i;
        step.loss = 1.0 + 0.01 * i;
        step.grad_norm = 0.5;
        step.micro_batches = 2;
        step.tokens = 32;
        step.step_ms = 10.0;
        log.logStep(step);
    }
    step.step = 5;
    step.loss = 10.0; // > 2x mean and > mean + 1.0
    log.logStep(step);
    step.step = 6;
    step.loss = std::numeric_limits<double>::quiet_NaN();
    log.logStep(step);

    obs::RunLogRecord custom("recovery");
    custom.num("attempt", static_cast<int64_t>(1))
        .str("error", "site \"pg.allreduce\"\nkilled");
    log.write(custom);

    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 8u);
    for (const std::string& line : lines) {
        EXPECT_TRUE(JsonValidator(line).valid()) << line;
    }
    // Normal steps carry no anomalies.
    EXPECT_NE(lines[0].find("\"anomaly_nan\":false"), std::string::npos);
    EXPECT_NE(lines[0].find("\"anomaly_loss_spike\":false"),
              std::string::npos);
    // The spike step is flagged.
    EXPECT_NE(lines[5].find("\"anomaly_loss_spike\":true"),
              std::string::npos)
        << lines[5];
    // The NaN step is flagged and its loss serializes as null (valid JSON).
    EXPECT_NE(lines[6].find("\"anomaly_nan\":true"), std::string::npos)
        << lines[6];
    EXPECT_NE(lines[6].find("\"loss\":null"), std::string::npos) << lines[6];
    // The custom record keeps its kind and escapes the error text.
    EXPECT_NE(lines[7].find("\"kind\":\"recovery\""), std::string::npos);
}

TEST(RunLog, TokensPerSecondDerivedFromWallTime)
{
    const std::string path = runLogScratch("runlog_tps.jsonl");
    obs::RunLog log(path);
    obs::StepRecord step;
    step.tokens = 500;
    step.step_ms = 250.0; // 2000 tokens/s
    log.logStep(step);
    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"tokens_per_s\":2000"), std::string::npos)
        << lines[0];
}

TEST(RunLog, GlobalSinkOpensAndCloses)
{
    const std::string path = runLogScratch("runlog_global.jsonl");
    obs::openRunLog(path);
    ASSERT_NE(obs::runLog(), nullptr);
    obs::RunLogRecord record("step");
    record.num("step", static_cast<int64_t>(0));
    obs::runLog()->write(record);
    obs::closeRunLog();
    EXPECT_EQ(obs::runLog(), nullptr);
    EXPECT_EQ(readLines(path).size(), 1u);
}


// --- profiler edge cases (attribution PR satellite) ----------------------

TEST(OpProfiler, EmptyProfilerReportsNothing)
{
    obs::OpProfiler profiler;
    EXPECT_TRUE(profiler.report().empty());
    // Empty histogram: the table and JSON render without rows and
    // without dividing by a zero total.
    EXPECT_TRUE(JsonValidator(profiler.toJson()).valid());
    EXPECT_FALSE(profiler.table().empty());
}

TEST(OpProfiler, ZeroDurationSampleHasZeroP99)
{
    obs::OpProfiler profiler;
    profiler.record("noop", "", 0);
    const obs::OpStats s = statsFor(profiler, "noop", "");
    EXPECT_EQ(s.count, 1);
    EXPECT_EQ(s.total_ns, 0);
    EXPECT_DOUBLE_EQ(s.mean_ns, 0.0);
    EXPECT_EQ(s.p99_ns, 0);
}

TEST(OpProfiler, SingleSampleP99WithinHistogramError)
{
    obs::OpProfiler profiler;
    profiler.record("op", "", 5000);
    const obs::OpStats s = statsFor(profiler, "op", "");
    EXPECT_EQ(s.count, 1);
    // p99 of a single sample is that sample's log-bucket upper bound:
    // never below the truth, at most 19% above (4 sub-buckets/octave).
    EXPECT_GE(s.p99_ns, 5000);
    EXPECT_LE(s.p99_ns, static_cast<int64_t>(5000 * 1.25));
}

TEST(OpProfiler, DeeplyNestedModuleScopeBuildsFullDottedPath)
{
    obs::OpProfiler profiler;
    obs::OpProfilerGuard guard(&profiler);
    std::string want;
    {
        obs::ModuleScope l0("model");
        obs::ModuleScope l1("encoder");
        obs::ModuleScope l2("layer.11");
        obs::ModuleScope l3("attention");
        obs::ModuleScope l4("self");
        obs::ModuleScope l5("query");
        want = "model.encoder.layer.11.attention.self.query";
        EXPECT_EQ(obs::ModuleScope::currentPath(), want);
        profiler.record("linear", obs::ModuleScope::currentPath(), 1000);
    }
    EXPECT_EQ(obs::ModuleScope::currentPath(), "");
    EXPECT_EQ(statsFor(profiler, "linear", want).count, 1);
}

// --- recovery / elastic counters are window-scoped -----------------------

TEST(MetricsScoping, RecoveryAndElasticCountersAreWindowed)
{
    obs::Metrics& m = obs::metrics();
    m.recovery_restores.add(3); // pre-window noise the delta must not see
    obs::MetricsDelta window;
    m.recovery_restores.add(1);
    m.elastic_rebuilds.add(1);
    m.elastic_lost_ranks.add(2);
    EXPECT_EQ(window.get("recovery.restores"), 1);
    EXPECT_EQ(window.get("elastic.rebuilds"), 1);
    EXPECT_EQ(window.get("elastic.lost_ranks"), 2);
}

// --- run-log schema versioning (docs/OBSERVABILITY.md) --------------------

TEST(RunLog, EveryRecordKindCarriesSchemaVersion)
{
    const std::string path = runLogScratch("runlog_schema.jsonl");
    obs::RunLog log(path);
    ASSERT_TRUE(log.good());

    // One record of every kind documented in docs/OBSERVABILITY.md.
    obs::StepRecord step;
    step.tokens = 8;
    step.step_ms = 1.0;
    log.logStep(step);
    for (const char* kind :
         {"checkpoint.save", "checkpoint.restore", "recovery",
          "recovery.giveup", "elastic.rebuild", "pipeline.forward",
          "tuner.trial", "dist_metrics", "step_report", "mem.budget"}) {
        obs::RunLogRecord record(kind);
        record.num("x", static_cast<int64_t>(1));
        log.write(record);
    }

    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 11u);
    for (const std::string& line : lines) {
        EXPECT_TRUE(JsonValidator(line).valid()) << line;
        EXPECT_NE(line.find("\"schema_version\":2"), std::string::npos)
            << line;
    }
}

TEST(RunLog, StepRecordCarriesMemoryFields)
{
    const std::string path = runLogScratch("runlog_mem_fields.jsonl");
    obs::RunLog log(path);
    ASSERT_TRUE(log.good());

    obs::StepRecord step;
    step.tokens = 8;
    step.step_ms = 1.0;
    step.mem_peak_bytes = 4096;
    step.mem_live_bytes = 1024;
    step.mem_retained_bytes = 512;
    step.mem_categories_json = "{\"parameter\":1024}";
    log.logStep(step);

    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_TRUE(JsonValidator(lines[0]).valid()) << lines[0];
    EXPECT_NE(lines[0].find("\"mem_peak_bytes\":4096"), std::string::npos);
    EXPECT_NE(lines[0].find("\"mem_live_bytes\":1024"), std::string::npos);
    EXPECT_NE(lines[0].find("\"mem_retained_bytes\":512"), std::string::npos);
    EXPECT_NE(lines[0].find("\"mem_categories\":{\"parameter\":1024}"),
              std::string::npos);

    // Profiler off: the per-category object is omitted, the scalar
    // fields stay (zeros) so the schema is stable.
    obs::StepRecord off;
    off.tokens = 8;
    off.step_ms = 1.0;
    log.logStep(off);
    const auto lines2 = readLines(path);
    ASSERT_EQ(lines2.size(), 2u);
    EXPECT_EQ(lines2[1].find("mem_categories"), std::string::npos);
    EXPECT_NE(lines2[1].find("\"mem_live_bytes\":0"), std::string::npos);
}

} // namespace
} // namespace slapo
