/** @file Unit tests of the tensor substrate (shapes, kernels, autograd math). */
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/ops.h"
#include "tensor/optim.h"
#include "tensor/tensor.h"

namespace slapo {
namespace {

TEST(Shape, NumelAndToString)
{
    EXPECT_EQ(numelOf({2, 3, 4}), 24);
    EXPECT_EQ(numelOf({}), 1);
    EXPECT_EQ(shapeToString({2, 3}), "[2, 3]");
}

TEST(Shape, Broadcast)
{
    EXPECT_EQ(broadcastShapes({2, 3}, {3}), (Shape{2, 3}));
    EXPECT_EQ(broadcastShapes({4, 1, 3}, {2, 1}), (Shape{4, 2, 3}));
    EXPECT_THROW(broadcastShapes({2, 3}, {4}), SlapoError);
}

TEST(Tensor, MetaHasNoStorage)
{
    Tensor t = Tensor::meta({8, 8});
    EXPECT_TRUE(t.isMeta());
    EXPECT_EQ(t.numel(), 64);
    EXPECT_THROW(t.data(), SlapoError);
}

TEST(Tensor, MaterializeZeros)
{
    Tensor t = Tensor::meta({4});
    t.materializeZeros();
    EXPECT_TRUE(t.materialized());
    EXPECT_FLOAT_EQ(t.at(0), 0.0f);
}

TEST(Tensor, CloneIsDeep)
{
    Tensor a = Tensor::full({2}, 3.0f);
    Tensor b = a.clone();
    b.set(0, 7.0f);
    EXPECT_FLOAT_EQ(a.at(0), 3.0f);
}

TEST(Tensor, ReshapeSharesStorage)
{
    Tensor a = Tensor::full({2, 3}, 1.0f);
    Tensor b = a.reshape({3, 2});
    b.set(0, 9.0f);
    EXPECT_FLOAT_EQ(a.at(0), 9.0f);
    EXPECT_THROW(a.reshape({7}), SlapoError);
}

TEST(Tensor, RandomDeterminism)
{
    Tensor a = Tensor::randn({16}, 1.0f, 7);
    Tensor b = Tensor::randn({16}, 1.0f, 7);
    EXPECT_TRUE(Tensor::allClose(a, b));
    Tensor c = Tensor::randn({16}, 1.0f, 8);
    EXPECT_FALSE(Tensor::allClose(a, c));
}

TEST(Ops, AddBroadcast)
{
    Tensor a = Tensor::fromValues({2, 2}, {1, 2, 3, 4});
    Tensor b = Tensor::fromValues({2}, {10, 20});
    Tensor c = ops::add(a, b);
    EXPECT_FLOAT_EQ(c.at(0), 11);
    EXPECT_FLOAT_EQ(c.at(1), 22);
    EXPECT_FLOAT_EQ(c.at(3), 24);
}

TEST(Ops, MatmulSmall)
{
    Tensor a = Tensor::fromValues({2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor b = Tensor::fromValues({3, 2}, {7, 8, 9, 10, 11, 12});
    Tensor c = ops::matmul(a, b);
    EXPECT_EQ(c.shape(), (Shape{2, 2}));
    EXPECT_FLOAT_EQ(c.at(0), 58);
    EXPECT_FLOAT_EQ(c.at(3), 154);
}

TEST(Ops, MatmulBatchBroadcast)
{
    Tensor a = Tensor::uniform({2, 4, 3}, 1.0f, 1);
    Tensor b = Tensor::uniform({3, 5}, 1.0f, 2);
    Tensor c = ops::matmul(a, b);
    EXPECT_EQ(c.shape(), (Shape{2, 4, 5}));
    // Consistency against per-batch 2-D multiply.
    Tensor a0 = ops::narrow(a, 0, 1, 1).reshape({4, 3});
    Tensor c0 = ops::matmul(a0, b);
    Tensor c1 = ops::narrow(c, 0, 1, 1).reshape({4, 5});
    EXPECT_TRUE(Tensor::allClose(c0, c1, 1e-5f));
}

TEST(Ops, LinearMatchesMatmul)
{
    Tensor x = Tensor::uniform({2, 3, 4}, 1.0f, 3);
    Tensor w = Tensor::uniform({5, 4}, 1.0f, 4);
    Tensor b = Tensor::uniform({5}, 1.0f, 5);
    Tensor y = ops::linear(x, w, b);
    Tensor y_ref = ops::add(ops::matmul(x, ops::transposeLast2(w)), b);
    EXPECT_TRUE(Tensor::allClose(y, y_ref, 1e-4f));
}

TEST(Ops, SoftmaxRowsSumToOne)
{
    Tensor x = Tensor::uniform({3, 7}, 3.0f, 11);
    Tensor y = ops::softmax(x);
    for (int64_t r = 0; r < 3; ++r) {
        float sum = 0;
        for (int64_t i = 0; i < 7; ++i) sum += y.at(r * 7 + i);
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

TEST(Ops, LayerNormNormalizes)
{
    Tensor x = Tensor::uniform({2, 8}, 2.0f, 13);
    Tensor gamma = Tensor::full({8}, 1.0f);
    Tensor beta = Tensor::zeros({8});
    Tensor y = ops::layerNorm(x, gamma, beta, 1e-5f);
    for (int64_t r = 0; r < 2; ++r) {
        float mean = 0;
        for (int64_t i = 0; i < 8; ++i) mean += y.at(r * 8 + i);
        EXPECT_NEAR(mean / 8, 0.0f, 1e-5f);
    }
}

TEST(Ops, DropoutDeterministicAndScaled)
{
    Tensor x = Tensor::full({1000}, 1.0f);
    Tensor y1 = ops::dropout(x, 0.5f, 77);
    Tensor y2 = ops::dropout(x, 0.5f, 77);
    EXPECT_TRUE(Tensor::allClose(y1, y2));
    // Kept elements are scaled by 1/(1-p); expectation preserved.
    float mean = 0;
    for (int64_t i = 0; i < 1000; ++i) mean += y1.at(i);
    EXPECT_NEAR(mean / 1000, 1.0f, 0.1f);
    // p = 0 is the identity.
    EXPECT_TRUE(Tensor::allClose(ops::dropout(x, 0.0f, 1), x));
}

TEST(Ops, ConcatChunkRoundTrip)
{
    Tensor a = Tensor::uniform({2, 6}, 1.0f, 17);
    auto parts = ops::chunk(a, 3, 1);
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0].shape(), (Shape{2, 2}));
    Tensor back = ops::concat(parts, 1);
    EXPECT_TRUE(Tensor::allClose(a, back));
}

TEST(Ops, NarrowBackwardScatters)
{
    Tensor g = Tensor::full({2, 2}, 1.0f);
    Tensor full = ops::narrowBackward(g, {2, 5}, 1, 2);
    EXPECT_FLOAT_EQ(full.at(0), 0);
    EXPECT_FLOAT_EQ(full.at(2), 1);
    EXPECT_FLOAT_EQ(full.at(3), 1);
    EXPECT_FLOAT_EQ(full.at(4), 0);
}

TEST(Ops, PermuteRoundTrip)
{
    Tensor a = Tensor::uniform({2, 3, 4}, 1.0f, 19);
    Tensor b = ops::permute(a, {2, 0, 1});
    EXPECT_EQ(b.shape(), (Shape{4, 2, 3}));
    Tensor c = ops::permute(b, {1, 2, 0});
    EXPECT_TRUE(Tensor::allClose(a, c));
}

TEST(Ops, EmbeddingGathersRows)
{
    Tensor table = Tensor::fromValues({3, 2}, {0, 1, 10, 11, 20, 21});
    Tensor ids = Tensor::fromValues({2}, {2, 0});
    Tensor e = ops::embedding(ids, table);
    EXPECT_FLOAT_EQ(e.at(0), 20);
    EXPECT_FLOAT_EQ(e.at(3), 1);
}

TEST(Ops, EmbeddingBackwardAccumulates)
{
    Tensor ids = Tensor::fromValues({3}, {1, 1, 0});
    Tensor g = Tensor::full({3, 2}, 1.0f);
    Tensor gt = ops::embeddingBackward(g, ids, 3);
    EXPECT_FLOAT_EQ(gt.at(2), 2.0f); // row 1 hit twice
    EXPECT_FLOAT_EQ(gt.at(0), 1.0f);
    EXPECT_FLOAT_EQ(gt.at(4), 0.0f);
}

TEST(Ops, CausalMaskKillsFuture)
{
    Tensor s = Tensor::zeros({1, 2, 2});
    Tensor m = ops::causalMask(s);
    EXPECT_FLOAT_EQ(m.at(0), 0);
    EXPECT_LT(m.at(1), -1e8);
    EXPECT_FLOAT_EQ(m.at(2), 0);
    Tensor p = ops::softmax(m);
    EXPECT_NEAR(p.at(1), 0.0f, 1e-6f);
}

TEST(Ops, RelPosBiasAddsBucketedTable)
{
    // 1 head, buckets = 2 -> table width 3: [far-left, diag, far-right].
    Tensor scores = Tensor::zeros({1, 1, 3, 3});
    Tensor table = Tensor::fromValues({1, 3}, {-1, 0, 1});
    Tensor out = ops::relPosBias(scores, table);
    // Diagonal gets table[1] = 0; j > i gets +1; j < i gets -1 (clipped).
    EXPECT_FLOAT_EQ(out.at(0), 0);  // (0,0)
    EXPECT_FLOAT_EQ(out.at(1), 1);  // (0,1)
    EXPECT_FLOAT_EQ(out.at(2), 1);  // (0,2) clipped to the same bucket
    EXPECT_FLOAT_EQ(out.at(3), -1); // (1,0)
    EXPECT_FLOAT_EQ(out.at(4), 0);  // (1,1)
}

TEST(Ops, RelPosBiasBackwardAccumulatesBuckets)
{
    Tensor grad = Tensor::full({1, 1, 3, 3}, 1.0f);
    Tensor table_grad = ops::relPosBiasTableBackward(grad, {1, 3});
    // 3 below-diagonal cells, 3 diagonal cells, 3 above-diagonal cells.
    EXPECT_FLOAT_EQ(table_grad.at(0), 3);
    EXPECT_FLOAT_EQ(table_grad.at(1), 3);
    EXPECT_FLOAT_EQ(table_grad.at(2), 3);
}

TEST(Ops, CrossEntropyOfUniformLogits)
{
    Tensor logits = Tensor::zeros({2, 4});
    Tensor targets = Tensor::fromValues({2}, {0, 3});
    Tensor loss = ops::crossEntropy(logits, targets);
    EXPECT_NEAR(loss.at(0), std::log(4.0f), 1e-5f);
}

TEST(Ops, RangeMaskAndClamp)
{
    Tensor x = Tensor::fromValues({4}, {-1, 0, 2, 5});
    Tensor m = ops::rangeMask(x, 0, 3);
    EXPECT_FLOAT_EQ(m.at(0), 0);
    EXPECT_FLOAT_EQ(m.at(1), 1);
    EXPECT_FLOAT_EQ(m.at(2), 1);
    EXPECT_FLOAT_EQ(m.at(3), 0);
    Tensor c = ops::clampScalar(x, 0, 3);
    EXPECT_FLOAT_EQ(c.at(0), 0);
    EXPECT_FLOAT_EQ(c.at(3), 3);
}

TEST(Ops, Conv2dIdentityKernel)
{
    Tensor x = Tensor::uniform({1, 1, 4, 4}, 1.0f, 23);
    Tensor w = Tensor::fromValues({1, 1, 1, 1}, {1.0f});
    Tensor y = ops::conv2d(x, w, 1, 0);
    EXPECT_TRUE(Tensor::allClose(x, y.reshape(x.shape())));
}

TEST(Ops, GlobalAvgPool)
{
    Tensor x = Tensor::full({2, 3, 4, 4}, 2.0f);
    Tensor y = ops::globalAvgPool(x);
    EXPECT_EQ(y.shape(), (Shape{2, 3}));
    EXPECT_FLOAT_EQ(y.at(0), 2.0f);
}

// --- gradient checks against finite differences ------------------------------

float
numericalGrad(const std::function<float(const Tensor&)>& f, Tensor x,
              int64_t index)
{
    const float eps = 1e-3f;
    const float orig = x.at(index);
    x.set(index, orig + eps);
    const float up = f(x);
    x.set(index, orig - eps);
    const float down = f(x);
    x.set(index, orig);
    return (up - down) / (2 * eps);
}

TEST(Grad, GeluMatchesFiniteDifference)
{
    Tensor x = Tensor::uniform({5}, 1.5f, 29);
    Tensor g = Tensor::full({5}, 1.0f);
    Tensor analytic = ops::geluBackward(g, x);
    for (int64_t i = 0; i < 5; ++i) {
        const float fd = numericalGrad(
            [&](const Tensor& t) {
                Tensor y = ops::gelu(t);
                float sum = 0;
                for (int64_t j = 0; j < y.numel(); ++j) sum += y.at(j);
                return sum;
            },
            x, i);
        EXPECT_NEAR(analytic.at(i), fd, 2e-2f);
    }
}

TEST(Grad, SoftmaxMatchesFiniteDifference)
{
    Tensor x = Tensor::uniform({1, 4}, 1.0f, 31);
    Tensor w = Tensor::uniform({1, 4}, 1.0f, 32); // random projection
    auto f = [&](const Tensor& t) {
        Tensor y = ops::softmax(t);
        Tensor prod = ops::mul(y, w);
        return ops::sumAll(prod).at(0);
    };
    Tensor y = ops::softmax(x);
    Tensor analytic = ops::softmaxBackward(w, y);
    for (int64_t i = 0; i < 4; ++i) {
        EXPECT_NEAR(analytic.at(i), numericalGrad(f, x, i), 2e-3f);
    }
}

TEST(Grad, LayerNormMatchesFiniteDifference)
{
    Tensor x = Tensor::uniform({2, 4}, 1.0f, 37);
    Tensor gamma = Tensor::uniform({4}, 1.0f, 38);
    Tensor beta = Tensor::uniform({4}, 1.0f, 39);
    Tensor w = Tensor::uniform({2, 4}, 1.0f, 40);
    auto f = [&](const Tensor& t) {
        return ops::sumAll(ops::mul(ops::layerNorm(t, gamma, beta, 1e-5f), w))
            .at(0);
    };
    auto grads = ops::layerNormBackward(w, x, gamma, 1e-5f);
    for (int64_t i = 0; i < 8; ++i) {
        EXPECT_NEAR(grads.grad_x.at(i), numericalGrad(f, x, i), 5e-3f);
    }
}

TEST(Grad, LinearMatchesFiniteDifference)
{
    Tensor x = Tensor::uniform({2, 3}, 1.0f, 41);
    Tensor w = Tensor::uniform({4, 3}, 1.0f, 42);
    Tensor wsum = Tensor::uniform({2, 4}, 1.0f, 43);
    auto f = [&](const Tensor& t) {
        return ops::sumAll(ops::mul(ops::linear(t, w, Tensor::zeros({4})), wsum))
            .at(0);
    };
    auto grads = ops::linearBackward(wsum, x, w, true);
    for (int64_t i = 0; i < 6; ++i) {
        EXPECT_NEAR(grads.grad_x.at(i), numericalGrad(f, x, i), 5e-3f);
    }
}

TEST(Grad, CrossEntropyMatchesFiniteDifference)
{
    Tensor logits = Tensor::uniform({2, 3}, 1.0f, 47);
    Tensor targets = Tensor::fromValues({2}, {1, 2});
    auto f = [&](const Tensor& t) { return ops::crossEntropy(t, targets).at(0); };
    Tensor analytic = ops::crossEntropyBackward(logits, targets);
    for (int64_t i = 0; i < 6; ++i) {
        EXPECT_NEAR(analytic.at(i), numericalGrad(f, logits, i), 5e-3f);
    }
}

// --- optimizer ---------------------------------------------------------------

TEST(AdamW, ConvergesOnQuadratic)
{
    // Minimize (p - 3)^2 elementwise.
    AdamWConfig config;
    config.lr = 0.1f;
    config.weight_decay = 0.0f;
    AdamW opt(config);
    Tensor p = Tensor::zeros({4});
    opt.addParam(p);
    for (int step = 0; step < 300; ++step) {
        Tensor grad = Tensor::zeros({4});
        for (int64_t i = 0; i < 4; ++i) {
            grad.set(i, 2.0f * (opt.param(0).at(i) - 3.0f));
        }
        opt.step({grad});
    }
    for (int64_t i = 0; i < 4; ++i) {
        EXPECT_NEAR(opt.param(0).at(i), 3.0f, 0.05f);
    }
}

TEST(AdamW, WeightDecayShrinksParams)
{
    AdamWConfig config;
    config.lr = 0.1f;
    config.weight_decay = 0.5f;
    AdamW opt(config);
    Tensor p = Tensor::full({1}, 1.0f);
    opt.addParam(p);
    opt.step({Tensor::zeros({1})});
    EXPECT_LT(opt.param(0).at(0), 1.0f);
}

TEST(AdamW, RejectsGradientCountMismatch)
{
    AdamW opt;
    opt.addParam(Tensor::zeros({2}));
    EXPECT_THROW(opt.step({}), SlapoError);
}

} // namespace
} // namespace slapo
