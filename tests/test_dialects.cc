/** @file Tests of the framework dialects, the threaded pipeline runtime,
 * and the auto-scheduler (shard/sync generation). */
#include <gtest/gtest.h>

#include "baselines/slapo_schedules.h"
#include "core/auto_shard.h"
#include "core/pipeline.h"
#include "core/verify.h"
#include "dialects/deepspeed_dialect.h"
#include "dialects/megatron_dialect.h"
#include "models/registry.h"
#include "runtime/pipeline_runtime.h"

#include <chrono>
#include <thread>

namespace slapo {
namespace {

using nn::ModulePtr;

std::vector<Tensor>
runModel(nn::Module& m, const std::vector<Tensor>& inputs)
{
    std::vector<nn::Value> values;
    for (const Tensor& t : inputs) values.emplace_back(t);
    std::vector<Tensor> out;
    for (nn::Value& v : m.call(values)) out.push_back(v.tensor());
    return out;
}

// --- DeepSpeed dialect ---------------------------------------------------

TEST(DeepSpeedDialect, StagePacksAndUnpacksTuples)
{
    core::PipelineStage stage;
    auto lin = std::make_shared<nn::Linear>(4, 4);
    lin->initializeParams(1);
    stage.modules.emplace_back("lin", lin);
    dialects::DeepSpeedStage wrapped(stage, /*bypass_count=*/1);

    Tensor x = Tensor::uniform({2, 4}, 1.0f, 3);
    Tensor live = Tensor::uniform({7}, 1.0f, 5);
    auto out = wrapped.call({nn::Value(x), nn::Value(live)});
    ASSERT_EQ(out.size(), 2u); // activation + bypassed tensor
    EXPECT_EQ(out[0].shape(), (Shape{2, 4}));
    // Liveness bypass: the second tuple entry passes through untouched.
    EXPECT_TRUE(Tensor::allClose(live, out[1].tensor()));
}

TEST(DeepSpeedDialect, RejectsEmptyInputTuple)
{
    core::PipelineStage stage;
    stage.modules.emplace_back("lin", std::make_shared<nn::Linear>(2, 2));
    dialects::DeepSpeedStage wrapped(stage, 0);
    EXPECT_THROW(wrapped.call({}), SlapoError);
}

TEST(DeepSpeedDialect, WrapRejectsEmptyStages)
{
    EXPECT_THROW(dialects::wrapForDeepSpeedPipeline({}), SlapoError);
    core::PipelineStage empty;
    EXPECT_THROW(dialects::wrapForDeepSpeedPipeline({empty}), SlapoError);
}

// --- Megatron dialect -----------------------------------------------------

TEST(MegatronDialect, AcceptsWellFormedTpSchedule)
{
    auto sch = baselines::applyRecipe(
        models::buildTinyModel("bert"),
        baselines::ScheduleRecipe::tensorParallel(2, 0.0, true));
    auto config = dialects::toMegatron(*sch->module(), 2);
    EXPECT_FALSE(config.column_parallel.empty());
    EXPECT_FALSE(config.row_parallel.empty());
    EXPECT_EQ(config.vocab_parallel.size(), 1u);
}

TEST(MegatronDialect, RejectsRowParallelWithoutSync)
{
    auto model = models::buildTinyModel("bert");
    auto sch = core::Schedule::create(model, 2);
    (*sch)["encoder.layer.0.ffn.fc2"].shard("weight", 1);
    // No forward sync: the output would remain a partial sum.
    EXPECT_THROW(dialects::toMegatron(*model, 2), SlapoError);
}

TEST(MegatronDialect, RejectsWorldSizeMismatch)
{
    auto sch = baselines::applyRecipe(
        models::buildTinyModel("bert"),
        baselines::ScheduleRecipe::tensorParallel(2, 0.0));
    EXPECT_THROW(dialects::toMegatron(*sch->module(), 4), SlapoError);
}

TEST(MegatronDialect, RejectsEmbeddingShardedOnWrongAxis)
{
    auto model = models::buildTinyModel("bert");
    auto sch = core::Schedule::create(model, 2);
    (*sch)["embeddings.word"].shard("weight", 1);
    (*sch)["embeddings.word"].sync(nn::SyncDirection::Forward);
    EXPECT_THROW(dialects::toMegatron(*model, 2), SlapoError);
}

// --- threaded pipeline runtime ---------------------------------------------

TEST(PipelineRuntime, MatchesSequentialExecution)
{
    auto model = models::buildTinyModel("bert");
    model->initializeParams(7);
    ModulePtr reference = model->clone();

    auto sch = core::Schedule::create(model, 2);
    (*sch)["encoder.layer.0"].pipelineSplit();
    auto stages = core::partitionPipeline(*sch, {{2, 8}});
    auto wrapped = dialects::wrapForDeepSpeedPipeline(stages);

    runtime::PipelineRuntime pipeline(wrapped);
    std::vector<std::vector<Tensor>> micros;
    for (int m = 0; m < 6; ++m) {
        micros.push_back({Tensor::randint({2, 8}, 64, 100 + m)});
    }
    runtime::PipelineRunResult result = pipeline.forward(micros);
    ASSERT_EQ(result.outputs.size(), micros.size());
    for (size_t m = 0; m < micros.size(); ++m) {
        auto expected = runModel(*reference, micros[m]);
        ASSERT_EQ(result.outputs[m].size(), 1u);
        EXPECT_TRUE(Tensor::allClose(expected[0], result.outputs[m][0], 1e-4f))
            << "micro-batch " << m;
    }
}

namespace {

/** Identity stage that dwells long enough to make overlap deterministic. */
class SlowIdentity : public nn::Module
{
  public:
    SlowIdentity() : Module("SlowIdentity") {}

    std::vector<nn::Value>
    forward(const std::vector<nn::Value>& inputs) override
    {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return inputs;
    }

    ModulePtr
    clone() const override
    {
        auto m = std::make_shared<SlowIdentity>();
        cloneInto(m.get());
        return m;
    }
};

} // namespace

TEST(PipelineRuntime, StagesActuallyOverlap)
{
    // Two slow stages + several micro-batches: more than one micro-batch
    // must be in flight at some point (otherwise it's not a pipeline).
    std::vector<ModulePtr> stages = {std::make_shared<SlowIdentity>(),
                                     std::make_shared<SlowIdentity>()};
    runtime::PipelineRuntime pipeline(stages);
    std::vector<std::vector<Tensor>> micros;
    for (int m = 0; m < 6; ++m) {
        micros.push_back({Tensor::full({4}, static_cast<float>(m))});
    }
    auto result = pipeline.forward(micros);
    EXPECT_GT(result.peak_in_flight, 1);
    // Order preserved through the queues.
    for (int m = 0; m < 6; ++m) {
        EXPECT_FLOAT_EQ(result.outputs[m][0].at(0), static_cast<float>(m));
    }
}

TEST(PipelineRuntime, PropagatesStageErrors)
{
    // A stage with mismatched dimensions must surface its SlapoError.
    core::PipelineStage s1;
    s1.modules.emplace_back("a", std::make_shared<nn::Linear>(4, 4));
    core::PipelineStage s2;
    s2.modules.emplace_back("b", std::make_shared<nn::Linear>(8, 4)); // wrong
    auto wrapped = dialects::wrapForDeepSpeedPipeline({s1, s2});
    wrapped[0]->initializeParams(1);
    wrapped[1]->initializeParams(2);
    runtime::PipelineRuntime pipeline(wrapped);
    EXPECT_THROW(pipeline.forward({{Tensor::uniform({2, 4}, 1.0f, 3)}}),
                 SlapoError);
}

// --- auto-scheduler ----------------------------------------------------------

TEST(AutoShard, RequiresDistributedSchedule)
{
    auto sch = core::Schedule::create(models::buildTinyModel("bert"), 1);
    EXPECT_THROW(core::autoShard(*sch), SlapoError);
}

TEST(AutoShard, GeneratesMegatronStylePlan)
{
    auto sch = core::Schedule::create(models::buildTinyModel("bert"), 2);
    core::AutoShardReport report = core::autoShard(*sch);
    // 2 layers: attention pair + FFN pair each, plus the pooler pair.
    EXPECT_GE(report.sharded_pairs.size(), 5u);
    EXPECT_EQ(report.sharded_embeddings.size(), 1u);
    EXPECT_FALSE(report.forward_syncs.empty());
    EXPECT_FALSE(report.backward_syncs.empty());
    // The result is in Megatron-accepted form.
    dialects::toMegatron(*sch->module(), 2);
}

TEST(AutoShard, GeneratedScheduleIsNumericallyCorrect)
{
    for (const char* name : {"bert", "opt", "t5"}) {
        auto model = models::buildTinyModel(name);
        model->initializeParams(11);
        ModulePtr reference = model->clone();

        auto sch = core::Schedule::create(model, 2);
        core::autoShard(*sch);

        core::VerifyOptions vopts;
        const bool is_t5 = std::string(name) == "t5";
        vopts.input_gen = [is_t5](int trial) {
            std::vector<Tensor> inputs = {
                Tensor::randint({2, 8}, 64, 300 + trial)};
            if (is_t5) {
                inputs.push_back(Tensor::randint({2, 8}, 64, 400 + trial));
            }
            return inputs;
        };
        core::verifyEndToEnd(*reference, *sch, vopts) /* throws on error */;
    }
}

TEST(AutoShard, IdempotentOnAlreadyShardedModel)
{
    auto sch = core::Schedule::create(models::buildTinyModel("bert"), 2);
    core::AutoShardReport first = core::autoShard(*sch);
    core::AutoShardReport second = core::autoShard(*sch);
    EXPECT_FALSE(first.sharded_pairs.empty());
    EXPECT_TRUE(second.sharded_pairs.empty());
    EXPECT_TRUE(second.sharded_embeddings.empty());
}

TEST(AutoShard, MinPairParamsFiltersSmallPairs)
{
    auto sch = core::Schedule::create(models::buildTinyModel("bert"), 2);
    core::AutoShardOptions options;
    options.shard_embeddings = false;
    options.min_pair_params = 1'000'000'000; // nothing qualifies
    core::AutoShardReport report = core::autoShard(*sch, options);
    // Attention pairs are type-guided (not size-filtered); FFN/pooler
    // structural pairs must all be dropped.
    for (const auto& [a, b] : report.sharded_pairs) {
        EXPECT_EQ(a.find("ffn"), std::string::npos) << a;
        EXPECT_EQ(a.find("pooler"), std::string::npos) << a;
    }
}

TEST(AutoShard, WorksAfterKernelOptimizationRecipe)
{
    // Auto-shard composes with the fused-QKV/flash/fusion schedule.
    auto model = models::buildTinyModel("bert");
    model->initializeParams(13);
    ModulePtr reference = model->clone();
    auto sch = baselines::applyRecipe(
        model, baselines::ScheduleRecipe::kernelOptimized());
    // Rebuild the schedule tree at world 2, then auto-shard.
    auto dist_sch = core::Schedule::create(sch->module(), 2);
    core::AutoShardReport report = core::autoShard(*dist_sch);
    EXPECT_FALSE(report.sharded_pairs.empty());

    core::VerifyOptions vopts;
    vopts.input_gen = [](int trial) {
        return std::vector<Tensor>{Tensor::randint({2, 8}, 64, 500 + trial)};
    };
    core::verifyEndToEnd(*reference, *dist_sch, vopts);
}

} // namespace
} // namespace slapo
