/** @file Tests of the graph IR: rewrites, fusion, pattern matching. */
#include <gtest/gtest.h>

#include "graph/pattern.h"
#include "nn/layers.h"
#include "nn/tracer.h"

namespace slapo {
namespace graph {
namespace {

/** Build a small hand-rolled graph: x -> scale -> gelu -> add(x) -> out. */
std::shared_ptr<Graph>
buildChainGraph()
{
    auto g = std::make_shared<Graph>();
    Node* x = g->createNode(NodeKind::Placeholder, "x");
    x->setShapes({{2, 4}});
    Node* s = g->createNode(NodeKind::CallOp, "scale");
    s->setOp(OpKind::Scale);
    s->setAttr("factor", 2.0);
    s->addInput(x);
    s->setShapes({{2, 4}});
    Node* ge = g->createNode(NodeKind::CallOp, "gelu");
    ge->setOp(OpKind::Gelu);
    ge->addInput(s);
    ge->setShapes({{2, 4}});
    Node* add = g->createNode(NodeKind::CallOp, "add");
    add->setOp(OpKind::Add);
    add->addInput(ge);
    add->addInput(x);
    add->setShapes({{2, 4}});
    Node* out = g->createNode(NodeKind::Output, "out");
    out->addInput(add);
    out->setShapes({{2, 4}});
    g->setOutputNode(out);
    return g;
}

TEST(Graph, UsersAndReplaceAllUses)
{
    auto g = buildChainGraph();
    auto nodes = g->nodes();
    Node* x = nodes[0];
    EXPECT_EQ(g->usersOf(x).size(), 2u); // scale and add

    Node* id = g->createNodeBefore(NodeKind::CallOp, "identity", nodes[1]);
    id->setOp(OpKind::Identity);
    id->addInput(x);
    id->setShapes({x->shape()});
    // Point the scale node at the identity instead.
    nodes[1]->replaceInput(x, id);
    EXPECT_EQ(g->usersOf(id).size(), 1u);
}

TEST(Graph, EraseRejectsLiveNodes)
{
    auto g = buildChainGraph();
    EXPECT_DEATH(g->eraseNode(g->nodes()[1]), "live users");
}

TEST(Graph, DeadNodeElimination)
{
    auto g = buildChainGraph();
    Node* dead = g->createNode(NodeKind::CallOp, "dead");
    dead->setOp(OpKind::Gelu);
    dead->addInput(g->nodes()[0]);
    dead->setShapes({{2, 4}});
    const size_t before = g->size();
    g->eliminateDeadNodes();
    EXPECT_EQ(g->size(), before - 1);
}

TEST(Graph, CloneIsStructurallyIdentical)
{
    auto g = buildChainGraph();
    auto copy = g->clone();
    ASSERT_EQ(copy->size(), g->size());
    EXPECT_EQ(copy->toString(), g->toString());
    EXPECT_NE(copy->outputNode(), g->outputNode());
}

TEST(Graph, FuseSubgraphCreatesInnerGraph)
{
    auto g = buildChainGraph();
    auto nodes = g->nodes();
    // Fuse scale + gelu.
    Node* fused = g->fuseSubgraph({nodes[1], nodes[2]}, "fused");
    ASSERT_NE(fused, nullptr);
    EXPECT_EQ(fused->kind(), NodeKind::FusedOp);
    ASSERT_NE(fused->subgraph(), nullptr);
    // Inner graph: placeholder + 2 ops + output.
    EXPECT_EQ(fused->subgraph()->size(), 4u);
    // The outer graph shrank: x, fused, add, out.
    EXPECT_EQ(g->size(), 4u);
    // add now consumes the fused node.
    Node* add = g->outputNode()->inputs()[0];
    EXPECT_EQ(add->inputs()[0], fused);
}

TEST(Graph, FuseRejectsMultiOutputBody)
{
    auto g = buildChainGraph();
    auto nodes = g->nodes();
    // scale feeds gelu (inside) but x->{scale, add}: fusing {x-ish}? Use
    // {scale} alone: its only consumer gelu is outside -> single output OK.
    Node* fused = g->fuseSubgraph({nodes[1]}, "single");
    EXPECT_EQ(fused->kind(), NodeKind::FusedOp);
    // Now fusing a body whose two nodes each feed outside must throw:
    auto g2 = buildChainGraph();
    auto n2 = g2->nodes();
    // gelu feeds add (outside body), x feeds scale and add: body {gelu, add}
    // has single external output (add) and is fine; body {scale, add} has
    // gelu consuming scale outside and out consuming add outside -> two
    // external outputs.
    EXPECT_THROW(g2->fuseSubgraph({n2[1], n2[3]}, "bad"), SlapoError);
}

TEST(Pattern, ChainMatchesOnce)
{
    auto g = buildChainGraph();
    auto matches = findPattern(*g, Pattern::chain({"scale", "gelu"}));
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_EQ(matches[0][0]->op(), OpKind::Scale);
    EXPECT_EQ(matches[0][1]->op(), OpKind::Gelu);
}

TEST(Pattern, NoMatchOnWrongOrder)
{
    auto g = buildChainGraph();
    EXPECT_TRUE(findPattern(*g, Pattern::chain({"gelu", "scale"})).empty());
}

TEST(Pattern, RepeatedLayersAllMatched)
{
    // Trace a 3-layer FFN stack flattened; each layer contributes one
    // gelu preceded by a call to a Linear leaf.
    auto seq = std::make_shared<nn::Sequential>();
    for (int i = 0; i < 3; ++i) {
        seq->append(std::make_shared<nn::FFN>(4, 8, 0.0));
    }
    nn::TraceOptions options;
    options.flatten = true;
    auto g = nn::traceModule(*seq, {{1, 2, 4}}, options);
    auto matches = findPattern(*g, Pattern::chain({"Linear", "gelu"}));
    EXPECT_EQ(matches.size(), 3u);
}

TEST(Pattern, RegexFindsBySignature)
{
    auto g = buildChainGraph();
    EXPECT_EQ(findByRegex(*g, "gelu").size(), 1u);
    EXPECT_EQ(findByRegex(*g, "^(scale|add)$").size(), 2u);
    EXPECT_TRUE(findByRegex(*g, "conv").empty());
}

TEST(Pattern, RejectsMatchWithExternalConsumerOfInnerNode)
{
    // x -> scale -> gelu, but scale also feeds a second gelu: the chain
    // {scale, gelu} would strand the second consumer, so it must not
    // match.
    auto g = std::make_shared<Graph>();
    Node* x = g->createNode(NodeKind::Placeholder, "x");
    x->setShapes({{2}});
    Node* s = g->createNode(NodeKind::CallOp, "scale");
    s->setOp(OpKind::Scale);
    s->setAttr("factor", 1.0);
    s->addInput(x);
    s->setShapes({{2}});
    Node* g1 = g->createNode(NodeKind::CallOp, "gelu");
    g1->setOp(OpKind::Gelu);
    g1->addInput(s);
    g1->setShapes({{2}});
    Node* g2n = g->createNode(NodeKind::CallOp, "gelu");
    g2n->setOp(OpKind::Gelu);
    g2n->addInput(s);
    g2n->setShapes({{2}});
    Node* add = g->createNode(NodeKind::CallOp, "add");
    add->setOp(OpKind::Add);
    add->addInput(g1);
    add->addInput(g2n);
    add->setShapes({{2}});
    Node* out = g->createNode(NodeKind::Output, "out");
    out->addInput(add);
    out->setShapes({{2}});
    g->setOutputNode(out);

    auto matches = findPattern(*g, Pattern::chain({"scale", "gelu"}));
    EXPECT_TRUE(matches.empty());
}

TEST(Node, AttrAccessors)
{
    Node n(NodeKind::CallOp, "n");
    n.setAttr("i", static_cast<int64_t>(3));
    n.setAttr("f", 2.5);
    n.setAttr("s", std::string("hello"));
    n.setAttr("v", std::vector<int64_t>{1, 2});
    EXPECT_EQ(n.attrInt("i"), 3);
    EXPECT_DOUBLE_EQ(n.attrFloat("f"), 2.5);
    EXPECT_EQ(n.attrStr("s"), "hello");
    EXPECT_EQ(n.attrInts("v").size(), 2u);
    EXPECT_EQ(n.attrInt("f"), 2); // cross-type coercion
    EXPECT_THROW(n.attrInt("missing"), SlapoError);
}

} // namespace
} // namespace graph
} // namespace slapo
