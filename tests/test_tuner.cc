/** @file Tests of the auto-tuner: search-space construction (Fig. 6) and
 * the exhaustive / coordinate-descent algorithms (Fig. 11). */
#include <gtest/gtest.h>

#include <cmath>

#include "tuner/tuner.h"

namespace slapo {
namespace tuner {
namespace {

/** The Fig. 6 polygon: batch sizes x checkpoint ratios with the
 * high-batch/low-ratio corner pruned as invalid. */
SearchSpace
fig6Space()
{
    SearchSpace space;
    space.addVar("batch", {4, 8, 16, 32});
    space.addVar("ckpt", {0.0, 0.25, 0.5, 0.75, 1.0});
    space.addConstraint([](const Config& c) {
        // Big batches need at least some checkpointing to fit.
        return c.at("batch") < 32 || c.at("ckpt") >= 0.5;
    });
    return space;
}

TEST(SearchSpace, RejectsEmptyAndDuplicateVars)
{
    SearchSpace space;
    EXPECT_THROW(space.addVar("x", {}), SlapoError);
    space.addVar("x", {1});
    EXPECT_THROW(space.addVar("x", {2}), SlapoError);
}

TEST(SearchSpace, EnumeratePrunesConstraints)
{
    SearchSpace space = fig6Space();
    EXPECT_EQ(space.cartesianSize(), 20u);
    // batch=32 loses ckpt {0, 0.25}: 20 - 2 = 18 valid configs.
    EXPECT_EQ(space.enumerate().size(), 18u);
}

TEST(SearchSpace, ValidChecksMembershipAndConstraints)
{
    SearchSpace space = fig6Space();
    EXPECT_TRUE(space.valid({{"batch", 8.0}, {"ckpt", 0.0}}));
    EXPECT_FALSE(space.valid({{"batch", 32.0}, {"ckpt", 0.0}})); // pruned
    EXPECT_FALSE(space.valid({{"batch", 5.0}, {"ckpt", 0.0}}));  // not a cand
    EXPECT_FALSE(space.valid({{"batch", 8.0}}));                 // incomplete
}

/** Smooth unimodal objective peaking at batch=16, ckpt=0.5. */
double
bowl(const Config& c)
{
    const double b = std::log2(c.at("batch"));
    const double r = c.at("ckpt");
    return 100.0 - (b - 4.0) * (b - 4.0) - 10.0 * (r - 0.5) * (r - 0.5);
}

TEST(Exhaustive, FindsGlobalOptimum)
{
    SearchSpace space = fig6Space();
    TuneResult result = exhaustiveSearch(space, bowl);
    EXPECT_TRUE(result.found());
    EXPECT_EQ(result.evaluated, 18);
    EXPECT_DOUBLE_EQ(result.best.at("batch"), 16.0);
    EXPECT_DOUBLE_EQ(result.best.at("ckpt"), 0.5);
}

TEST(CoordinateDescent, FindsOptimumWithFewerEvals)
{
    SearchSpace space = fig6Space();
    TuneResult exhaustive = exhaustiveSearch(space, bowl);
    TuneResult cd = coordinateDescent(space, bowl);
    EXPECT_TRUE(cd.found());
    EXPECT_DOUBLE_EQ(cd.best_value, exhaustive.best_value);
    EXPECT_LT(cd.evaluated, exhaustive.evaluated);
}

TEST(CoordinateDescent, HandlesOomRegions)
{
    SearchSpace space = fig6Space();
    auto eval = [](const Config& c) {
        if (c.at("batch") >= 16 && c.at("ckpt") < 0.5) {
            return 0.0; // OOM
        }
        return bowl(c);
    };
    TuneResult result = coordinateDescent(space, eval, {.seed = 7, .restarts = 3});
    EXPECT_TRUE(result.found());
    EXPECT_GT(result.best_value, 0.0);
    // The optimum moved to (16, 0.5) which is still feasible.
    EXPECT_DOUBLE_EQ(result.best.at("batch"), 16.0);
    EXPECT_DOUBLE_EQ(result.best.at("ckpt"), 0.5);
}

TEST(CoordinateDescent, MemoizesRepeatedConfigs)
{
    SearchSpace space = fig6Space();
    int calls = 0;
    auto eval = [&calls](const Config& c) {
        ++calls;
        return bowl(c);
    };
    TuneResult result = coordinateDescent(space, eval, {.seed = 3, .restarts = 4});
    EXPECT_EQ(calls, result.evaluated);
    EXPECT_EQ(result.history.size(), static_cast<size_t>(result.evaluated));
}

TEST(CoordinateDescent, DeterministicGivenSeed)
{
    SearchSpace space = fig6Space();
    TuneResult a = coordinateDescent(space, bowl, {.seed = 11});
    TuneResult b = coordinateDescent(space, bowl, {.seed = 11});
    EXPECT_EQ(a.evaluated, b.evaluated);
    EXPECT_EQ(a.best, b.best);
}

TEST(Tuner, EmptySpaceReturnsNotFound)
{
    SearchSpace space;
    space.addVar("x", {1.0});
    space.addConstraint([](const Config&) { return false; });
    EXPECT_FALSE(exhaustiveSearch(space, bowl).found());
    EXPECT_FALSE(coordinateDescent(space, bowl).found());
}

} // namespace
} // namespace tuner
} // namespace slapo
