/** @file Tests of the performance simulator: roofline costs, collective
 * formulas, memory accounting, and directional properties of the
 * parallelism runtimes. */
#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/schedule.h"
#include "models/registry.h"
#include "sim/training_sim.h"

namespace slapo {
namespace sim {
namespace {

using baselines::ScheduleRecipe;

nn::KernelRecord
kernel(double flops, double bytes_in, double bytes_out)
{
    nn::KernelRecord k;
    k.flops = flops;
    k.bytes_in = bytes_in;
    k.bytes_out = bytes_out;
    k.activation_bytes = bytes_out;
    return k;
}

TEST(CostModel, RooflineRegimes)
{
    CostModel cm(ClusterSpec::singleV100(), 2.0);
    const DeviceSpec& d = ClusterSpec::singleV100().device;
    // Compute-bound: huge FLOPs, tiny traffic (utilization ramp ~1).
    const double t_compute = cm.kernelTime(kernel(1e12, 1e3, 1e3));
    const double utilization = 1e12 / (1e12 + d.gemm_ramp_flops);
    EXPECT_NEAR(t_compute,
                d.kernel_launch_overhead +
                    1e12 /
                        (d.peak_flops_fp16 * d.compute_efficiency * utilization),
                1e-6);
    // Memory-bound: tiny FLOPs, big traffic.
    const double t_mem = cm.kernelTime(kernel(1e3, 1e9, 1e9));
    EXPECT_NEAR(t_mem,
                d.kernel_launch_overhead +
                    2e9 / (d.mem_bandwidth * d.bandwidth_efficiency),
                1e-5);
    // Launch-bound: a zero-FLOP copy kernel costs about the launch
    // overhead (tiny-FLOP kernels additionally pay the utilization ramp).
    const double t_launch = cm.kernelTime(kernel(0, 1e3, 1e3));
    EXPECT_NEAR(t_launch, d.kernel_launch_overhead, 1e-6);
}

TEST(CostModel, Fp32UsesFp32Peak)
{
    CostModel fp16(ClusterSpec::singleV100(), 2.0);
    CostModel fp32(ClusterSpec::singleV100(), 4.0);
    const auto k = kernel(1e12, 1e3, 1e3);
    EXPECT_GT(fp32.kernelTime(k), fp16.kernelTime(k));
}

TEST(CostModel, BackwardIsRoughlyTwiceForward)
{
    CostModel cm(ClusterSpec::singleV100(), 2.0);
    const auto k = kernel(1e12, 1e6, 1e6);
    EXPECT_NEAR(cm.kernelBackwardTime(k) / cm.kernelTime(k), 2.0, 0.1);
}

TEST(CostModel, BiggerKernelsRunMoreEfficiently)
{
    // FLOP/s throughput of one kernel must grow with per-kernel work
    // (the GEMM utilization ramp — what makes batch sizes matter).
    CostModel cm(ClusterSpec::singleV100(), 2.0);
    const double t_small = cm.kernelTime(kernel(1e9, 1e3, 1e3));
    const double t_big = cm.kernelTime(kernel(16e9, 1e3, 1e3));
    EXPECT_GT((16e9 / t_big) / (1e9 / t_small), 1.5);
}

TEST(CostModel, RingAllReduceScalesWithGroup)
{
    CostModel cm(ClusterSpec::p3_16xlarge(), 2.0);
    const double t2 = cm.collectiveTime("all_reduce", 1e9, 2, false);
    const double t8 = cm.collectiveTime("all_reduce", 1e9, 8, false);
    // Volume factor 2(n-1)/n: 1.0 at n=2 vs 1.75 at n=8.
    EXPECT_GT(t8, t2);
    EXPECT_LT(t8, 2.0 * t2);
    EXPECT_DOUBLE_EQ(cm.collectiveTime("all_reduce", 1e9, 1, false), 0.0);
}

TEST(CostModel, CrossNodeCollectivesAreSlower)
{
    CostModel cm(ClusterSpec::p3dn_24xlarge(2), 2.0);
    EXPECT_GT(cm.collectiveTime("all_reduce", 1e9, 8, true),
              cm.collectiveTime("all_reduce", 1e9, 8, false));
}

TEST(CostModel, AllGatherIsHalfAnAllReduce)
{
    CostModel cm(ClusterSpec::p3_16xlarge(), 2.0);
    const double ar = cm.collectiveTime("all_reduce", 1e9, 8, false);
    const double ag = cm.collectiveTime("all_gather", 1e9, 8, false);
    EXPECT_NEAR(ar / ag, 2.0, 0.1);
    EXPECT_THROW(cm.collectiveTime("bogus", 1e9, 8, false), SlapoError);
}

TEST(MemoryModel, MixedPrecisionAdamWIs16BytesPerParam)
{
    nn::Linear lin(1000, 1000, /*bias=*/false);
    MemoryModel mm(2.0, /*zero=*/0, /*dp=*/1);
    MemoryBreakdown mem = mm.stateMemory(lin);
    EXPECT_DOUBLE_EQ(mem.weights, 2e6);
    EXPECT_DOUBLE_EQ(mem.gradients, 2e6);
    EXPECT_DOUBLE_EQ(mem.optimizer_states, 12e6);
    EXPECT_DOUBLE_EQ(mem.total(), 16e6);
}

TEST(MemoryModel, ZeroStagesShardProgressively)
{
    nn::Linear lin(1000, 1000, false);
    const double dp = 8;
    MemoryBreakdown m0 = MemoryModel(2.0, 0, 8).stateMemory(lin);
    MemoryBreakdown m1 = MemoryModel(2.0, 1, 8).stateMemory(lin);
    MemoryBreakdown m2 = MemoryModel(2.0, 2, 8).stateMemory(lin);
    MemoryBreakdown m3 = MemoryModel(2.0, 3, 8).stateMemory(lin);
    EXPECT_DOUBLE_EQ(m1.optimizer_states, m0.optimizer_states / dp);
    EXPECT_DOUBLE_EQ(m2.gradients, m0.gradients / dp);
    EXPECT_LT(m3.weights, m0.weights); // sharded + small working set
    EXPECT_LT(m3.total(), m2.total());
    EXPECT_LT(m2.total(), m1.total());
    EXPECT_LT(m1.total(), m0.total());
}

TEST(MemoryModel, CheckpointedKernelsDropFromActivations)
{
    nn::Profile profile;
    auto k1 = kernel(0, 0, 0);
    k1.activation_bytes = 100;
    profile.kernels.push_back(k1);
    auto k2 = k1;
    k2.checkpointed = true;
    profile.kernels.push_back(k2);
    profile.checkpoint_boundary_bytes = 10;
    MemoryModel mm(2.0, 0, 1);
    // Checkpointed kernel excluded; (100 + 10 boundary) x fragmentation.
    const double one = mm.activationMemory(profile);
    EXPECT_GT(one, 110.0 - 1e-9);   // at least the raw bytes
    EXPECT_LT(one, 2.0 * 110.0);    // fragmentation factor is modest
    EXPECT_DOUBLE_EQ(mm.activationMemory(profile, 4), 4.0 * one);
    // The checkpointed kernel's bytes are really excluded.
    profile.kernels[1].checkpointed = false;
    EXPECT_GT(mm.activationMemory(profile), one * 1.5);
}

TEST(Simulator, ProfileReflectsBatchSize)
{
    TrainingSimulator simulator(ClusterSpec::singleV100(), 2.0);
    auto model = models::buildModel("bert", 0);
    auto p1 = simulator.profileModel(*model, {{1, 512}}, 1);
    auto p4 = simulator.profileModel(*model, {{4, 512}}, 1);
    EXPECT_NEAR(p4.totalFlops() / p1.totalFlops(), 4.0, 0.2);
    EXPECT_EQ(p1.kernels.size(), p4.kernels.size());
}

TEST(Simulator, TensorParallelShrinksPerRankFlopsAndAddsComm)
{
    TrainingSimulator simulator(ClusterSpec::p3_16xlarge(), 2.0);
    auto full = baselines::applyRecipe(models::buildModel("bert", 0),
                                       ScheduleRecipe::kernelOptimized());
    auto tp = baselines::applyRecipe(models::buildModel("bert", 0),
                                     ScheduleRecipe::tensorParallel(8, 0.0));
    auto p_full = simulator.profileModel(*full->module(), {{4, 512}}, 1);
    auto p_tp = simulator.profileModel(*tp->module(), {{4, 512}}, 8);
    EXPECT_LT(p_tp.totalFlops(), p_full.totalFlops() * 0.3);
    EXPECT_TRUE(p_full.comms.empty());
    EXPECT_FALSE(p_tp.comms.empty());
}

TEST(Simulator, OomDetectedAtHugeBatch)
{
    TrainingSimulator simulator(ClusterSpec::singleV100(), 2.0);
    auto model = models::buildModel("bert", 0);
    ParallelConfig config;
    config.micro_batch = 512;
    StepStats stats = simulator.simulate(
        *model, [](int mb) { return std::vector<Shape>{{mb, 512}}; }, config);
    EXPECT_TRUE(stats.oom);
    EXPECT_DOUBLE_EQ(stats.throughput, 0.0);
}

TEST(Simulator, TuneMicroBatchPicksFeasibleBest)
{
    TrainingSimulator simulator(ClusterSpec::singleV100(), 2.0);
    auto model = models::buildModel("bert", 0);
    ParallelConfig config;
    StepStats best = simulator.tuneMicroBatch(
        *model, [](int mb) { return std::vector<Shape>{{mb, 512}}; }, config,
        256);
    EXPECT_FALSE(best.oom);
    EXPECT_GE(best.config.micro_batch, 1);
    // Doubling once more must be OOM or slower.
    ParallelConfig next = best.config;
    next.micro_batch *= 2;
    StepStats doubled = simulator.simulate(
        *model, [](int mb) { return std::vector<Shape>{{mb, 512}}; }, next);
    EXPECT_TRUE(doubled.oom || doubled.throughput <= best.throughput + 1e-9);
}

TEST(Simulator, FixedGlobalBatchKeepsProduct)
{
    TrainingSimulator simulator(ClusterSpec::p3_16xlarge(), 2.0);
    auto model = models::buildModel("bert", 0);
    ParallelConfig config;
    config.dp = 8;
    StepStats best = simulator.tuneMicroBatch(
        *model, [](int mb) { return std::vector<Shape>{{mb, 512}}; }, config,
        64, /*fixed_global_batch=*/256);
    ASSERT_FALSE(best.oom);
    EXPECT_DOUBLE_EQ(best.config.globalBatch(), 256.0);
}

// --- directional properties the figures rely on ------------------------------

TEST(Property, FlashAttentionReducesActivationMemory)
{
    TrainingSimulator simulator(ClusterSpec::singleV100(), 2.0);
    ScheduleRecipe flash;
    flash.flash_attention = true;
    auto vanilla = baselines::applyRecipe(models::buildModel("bert", 0),
                                          ScheduleRecipe::vanilla());
    auto efficient =
        baselines::applyRecipe(models::buildModel("bert", 0), flash);
    auto p_vanilla =
        simulator.profileModel(*vanilla->module(), {{4, 512}}, 1);
    auto p_flash =
        simulator.profileModel(*efficient->module(), {{4, 512}}, 1);
    MemoryModel mm(2.0, 0, 1);
    EXPECT_LT(mm.activationMemory(p_flash),
              0.8 * mm.activationMemory(p_vanilla));
    EXPECT_LT(p_flash.kernels.size(), p_vanilla.kernels.size());
}

TEST(Property, CheckpointingTradesMemoryForRecompute)
{
    TrainingSimulator simulator(ClusterSpec::singleV100(), 2.0);
    auto none = baselines::applyRecipe(models::buildModel("bert", 0),
                                       ScheduleRecipe::kernelOptimized(0.0));
    auto full = baselines::applyRecipe(models::buildModel("bert", 0),
                                       ScheduleRecipe::kernelOptimized(1.0));
    ParallelConfig config;
    config.micro_batch = 4;
    auto shapes = [](int mb) { return std::vector<Shape>{{mb, 512}}; };
    StepStats s_none = simulator.simulate(*none->module(), shapes, config);
    StepStats s_full = simulator.simulate(*full->module(), shapes, config);
    EXPECT_LT(s_full.memory.activations, s_none.memory.activations);
    EXPECT_GT(s_full.phases.recompute, 0.0);
    EXPECT_DOUBLE_EQ(s_none.phases.recompute, 0.0);
    EXPECT_GT(s_full.step_time, s_none.step_time);
}

TEST(Property, SelectiveCheckpointBeatsAllOrNothingSomewhere)
{
    // The Fig. 10/11 premise: at the memory edge, a fractional ratio
    // allows a batch the no-checkpoint schedule cannot fit while paying
    // less recompute than full checkpointing.
    TrainingSimulator simulator(ClusterSpec::singleV100(), 2.0);
    auto shapes = [](int mb) { return std::vector<Shape>{{mb, 512}}; };
    double best_fractional = 0;
    double at_zero = 0;
    double at_full = 0;
    for (double ratio : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        auto sch = baselines::applyRecipe(
            models::buildModel("bert", 0),
            baselines::ScheduleRecipe::kernelOptimized(ratio));
        ParallelConfig config;
        StepStats s =
            simulator.tuneMicroBatch(*sch->module(), shapes, config, 128);
        const double thr = s.oom ? 0 : s.throughput;
        if (ratio == 0.0) at_zero = thr;
        if (ratio == 1.0) at_full = thr;
        if (ratio > 0.0 && ratio < 1.0) {
            best_fractional = std::max(best_fractional, thr);
        }
    }
    EXPECT_GE(best_fractional, std::min(at_zero, at_full));
}

TEST(Property, PipelineBubbleShrinksWithMoreMicroBatches)
{
    TrainingSimulator simulator(ClusterSpec::p3dn_24xlarge(2), 2.0);
    auto sch = baselines::applyRecipe(
        models::buildGpt10B(), baselines::ScheduleRecipe::tensorParallel(8, 1.0));
    auto shapes = [](int mb) { return std::vector<Shape>{{mb, 1024}}; };
    ParallelConfig config;
    config.tp = 8;
    config.pp = 2;
    config.micro_batch = 1;
    config.grad_accum = 4;
    StepStats few = simulator.simulate(*sch->module(), shapes, config);
    config.grad_accum = 32;
    StepStats many = simulator.simulate(*sch->module(), shapes, config);
    // Throughput per sample improves as the bubble amortizes.
    const double thr_few = 4.0 * config.tp * 0 + few.throughput;
    EXPECT_GT(many.throughput, thr_few);
}

TEST(Property, AnnotatedPipelineUsesBottleneckStage)
{
    // With real .pipeline_split() annotations, the simulator profiles
    // each stage and the slowest one paces the pipeline — never faster
    // than the idealized even split.
    auto cluster = ClusterSpec::p3dn_24xlarge(2);
    TrainingSimulator simulator(cluster, 2.0);
    auto shapes = baselines::modelShapeFn("gpt-10b", 0);

    ParallelConfig config;
    config.tp = 8;
    config.pp = 2;
    config.micro_batch = 2;
    config.grad_accum = 16;

    auto even = baselines::applyRecipe(
        models::buildGpt10B(), ScheduleRecipe::tensorParallel(8, 1.0));
    StepStats even_stats =
        simulator.simulate(*even->module(), shapes, config);

    auto annotated = baselines::applyRecipe(
        models::buildGpt10B(), ScheduleRecipe::tensorParallel(8, 1.0));
    auto sch = core::Schedule::create(annotated->module(), 16);
    // Split after decoder layer 23: stage 0 = embeddings + 24 layers,
    // stage 1 = 24 layers + the (vocab-heavy) head.
    (*sch)["decoder.layer.23"].pipelineSplit();
    StepStats annotated_stats =
        simulator.simulate(*sch->module(), shapes, config);

    ASSERT_FALSE(even_stats.oom);
    ASSERT_FALSE(annotated_stats.oom);
    EXPECT_LE(annotated_stats.throughput, even_stats.throughput * 1.02);
    EXPECT_GT(annotated_stats.throughput, even_stats.throughput * 0.5);
}

TEST(Property, AnnotatedPipelineRejectsStageCountMismatch)
{
    auto cluster = ClusterSpec::p3dn_24xlarge(2);
    TrainingSimulator simulator(cluster, 2.0);
    auto model = models::buildGpt10B();
    auto sch = core::Schedule::create(model, 16);
    (*sch)["decoder.layer.23"].pipelineSplit();
    ParallelConfig config;
    config.tp = 4;
    config.pp = 4; // but only 2 annotated stages
    EXPECT_THROW(simulator.simulate(
                     *model, baselines::modelShapeFn("gpt-10b", 0), config),
                 SlapoError);
}

TEST(Property, ZeroThreeTradesMemoryForComm)
{
    TrainingSimulator simulator(ClusterSpec::p3_16xlarge(), 2.0);
    auto model = models::buildModel("bert", 0);
    auto shapes = [](int mb) { return std::vector<Shape>{{mb, 512}}; };
    ParallelConfig ddp;
    ddp.dp = 8;
    ddp.micro_batch = 2;
    ParallelConfig z3 = ddp;
    z3.zero_stage = 3;
    StepStats s_ddp = simulator.simulate(*model, shapes, ddp);
    StepStats s_z3 = simulator.simulate(*model, shapes, z3);
    const double state_ddp = s_ddp.memory.weights + s_ddp.memory.gradients +
                             s_ddp.memory.optimizer_states;
    const double state_z3 = s_z3.memory.weights + s_z3.memory.gradients +
                            s_z3.memory.optimizer_states;
    EXPECT_LT(state_z3, state_ddp / 4);
    EXPECT_GT(s_z3.phases.dp_comm + 1e-12, s_ddp.phases.dp_comm);
}

TEST(Property, StrongScalingIncreasesThroughput)
{
    // GPT-10B Megatron-style strong scaling must be monotone in GPUs.
    double previous = 0;
    for (int nodes : {2, 4, 8}) {
        auto cluster = ClusterSpec::p3dn_24xlarge(nodes);
        baselines::RunOptions options;
        options.tp = 8;
        options.pp = 2;
        options.dp = cluster.worldSize() / 16;
        options.fixed_global_batch = 256;
        auto result = baselines::runMegatron("gpt-10b", 0, cluster, options);
        ASSERT_FALSE(result.stats.oom) << nodes << " nodes";
        EXPECT_GT(result.stats.throughput, previous);
        previous = result.stats.throughput;
    }
}

TEST(Baselines, TorchScriptRejectsGptNeo)
{
    auto cluster = ClusterSpec::singleV100();
    auto gpt = baselines::runTorchScript("gpt", 0, cluster);
    EXPECT_FALSE(gpt.supported);
    auto bert = baselines::runTorchScript("bert", 0, cluster);
    EXPECT_TRUE(bert.supported);
}

TEST(Baselines, MegatronRejectsUnsupportedModels)
{
    auto cluster = ClusterSpec::p3_16xlarge();
    baselines::RunOptions options;
    options.tp = 8;
    for (const char* name : {"roberta", "albert", "opt", "wideresnet"}) {
        auto result = baselines::runMegatron(name, 0, cluster, options);
        EXPECT_FALSE(result.supported) << name;
    }
    EXPECT_TRUE(baselines::runMegatron("bert", 0, cluster, options).supported);
}

TEST(Baselines, FuseElementwiseReducesKernels)
{
    nn::Profile profile;
    for (int i = 0; i < 3; ++i) {
        auto k = kernel(100, 1000, 1000);
        k.name = "add";
        profile.kernels.push_back(k);
    }
    auto k = kernel(1e6, 1000, 1000);
    k.name = "linear";
    profile.kernels.push_back(k);
    auto fused = baselines::fuseElementwiseChains(profile);
    ASSERT_EQ(fused.kernels.size(), 2u);
    EXPECT_EQ(fused.kernels[0].name, "nvfuser_pointwise");
    EXPECT_DOUBLE_EQ(fused.kernels[0].flops, 300);
    EXPECT_EQ(fused.kernels[1].name, "linear");
}

TEST(Baselines, SlapoBeatsEagerOnEveryTable2Model)
{
    auto cluster = ClusterSpec::singleV100();
    for (const auto& info : models::table2()) {
        auto eager = baselines::runEager(info.name, 0, cluster);
        auto slapo = baselines::runSlapoSingleDevice(info.name, 0, cluster);
        ASSERT_FALSE(eager.stats.oom) << info.name;
        ASSERT_FALSE(slapo.stats.oom) << info.name;
        EXPECT_GE(slapo.stats.throughput, eager.stats.throughput * 0.999)
            << info.name;
    }
}

} // namespace
} // namespace sim
} // namespace slapo
