/**
 * @file
 * Memory observability: the live-tensor registry, category/module/
 * primitive attribution, peak forensics, the budget watchdog, and the
 * measured-memory fields of tuner trials (docs/OBSERVABILITY.md,
 * "Where did my memory go?").
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/schedule.h"
#include "graph/pattern.h"
#include "json_validator.h"
#include "models/registry.h"
#include "obs/mem_profiler.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/provenance.h"
#include "obs/run_log.h"
#include "runtime/autograd.h"
#include "runtime/dist_executor.h"
#include "runtime/trainer.h"
#include "support/error.h"
#include "tuner/tuner.h"

namespace slapo {
namespace {

using obs::MemCategory;
using testutil::JsonValidator;

/** RAII: enable the profiler on a clean registry, restore "off" after. */
class ProfilerOn
{
  public:
    ProfilerOn()
    {
        obs::setMemBudget(-1);
        obs::setMemDumpPath("");
        obs::setMemProfilingEnabled(true);
        obs::memProfilerReset();
    }
    ~ProfilerOn()
    {
        obs::setMemBudget(-1);
        obs::setMemDumpPath("");
        obs::setMemProfilingEnabled(false);
        obs::memProfilerReset();
    }
};

std::string
scratchPath(const std::string& name)
{
    const auto dir = std::filesystem::temp_directory_path() / "slapo_memprof";
    std::filesystem::create_directories(dir);
    const std::string path = (dir / name).string();
    std::remove(path.c_str());
    return path;
}

std::vector<std::string>
readLines(const std::string& path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty()) {
            lines.push_back(line);
        }
    }
    return lines;
}

// --- registry basics ------------------------------------------------------

TEST(MemProfiler, RegistersTaggedAllocationsAndFrees)
{
    ProfilerOn on;
    int a = 0, b = 0;

    obs::memRecordAlloc(&a, 1000, MemCategory::Parameter);
    {
        obs::MemCategoryScope scope(MemCategory::OptimizerState);
        obs::memRecordAlloc(&b, 2000);
    }

    EXPECT_EQ(obs::memLiveBytes(), 3000);
    EXPECT_EQ(obs::memRegistrySize(), 2);
    EXPECT_EQ(obs::memCategoryLiveBytes(MemCategory::Parameter), 1000);
    EXPECT_EQ(obs::memCategoryLiveBytes(MemCategory::OptimizerState), 2000);
    EXPECT_EQ(obs::memCategoryLiveBytes(MemCategory::Activation), 0);

    obs::MemTensorRow row;
    ASSERT_TRUE(obs::memLookup(&b, &row));
    EXPECT_EQ(row.bytes, 2000);
    EXPECT_EQ(row.category, MemCategory::OptimizerState);

    obs::memRecordFree(&a);
    EXPECT_EQ(obs::memLiveBytes(), 2000);
    EXPECT_EQ(obs::memRegistrySize(), 1);
    EXPECT_EQ(obs::memCategoryLiveBytes(MemCategory::Parameter), 0);

    // Unknown keys (allocated while the profiler was off) are ignored.
    int unknown = 0;
    obs::memRecordFree(&unknown);
    EXPECT_EQ(obs::memRegistrySize(), 1);

    obs::memRecordFree(&b);
    EXPECT_EQ(obs::memLiveBytes(), 0);
    EXPECT_EQ(obs::memRegistrySize(), 0);
}

TEST(MemProfiler, DisabledPathRecordsNothing)
{
    obs::setMemProfilingEnabled(false);
    obs::memProfilerReset();
    EXPECT_FALSE(obs::memProfilingEnabled());

    // Real tensor traffic while disabled: nothing enters the registry.
    {
        Tensor t = Tensor::zeros({64, 64});
        EXPECT_EQ(obs::memRegistrySize(), 0);
        EXPECT_EQ(obs::memLiveBytes(), 0);
    }
    EXPECT_EQ(obs::memRegistrySize(), 0);
}

TEST(MemProfiler, TensorStorageIsTrackedWhenEnabled)
{
    ProfilerOn on;
    {
        Tensor t = Tensor::zeros({32, 32});
        EXPECT_EQ(obs::memLiveBytes(), t.bytes());
        EXPECT_EQ(obs::memRegistrySize(), 1);
        obs::MemTensorRow row;
        ASSERT_TRUE(obs::memLookup(t.storageKey(), &row));
        EXPECT_EQ(row.bytes, t.bytes());
        EXPECT_EQ(row.category, MemCategory::Activation); // untagged default
    }
    // Storage-deleter path unregisters on destruction.
    EXPECT_EQ(obs::memLiveBytes(), 0);
    EXPECT_EQ(obs::memRegistrySize(), 0);
}

TEST(MemProfiler, PrimitiveResolutionMatchesStepReports)
{
    ProfilerOn on;
    obs::clearProvenance();
    obs::recordPrimitive("checkpoint", "encoder.layer.0");

    // Stamped node provenance beats the registry's prefix match.
    const std::string stamped = "fuse";
    int a = 0, b = 0, c = 0;
    {
        obs::MemNodeScope node(7, &stamped);
        obs::memRecordAlloc(&a, 100);
    }
    obs::MemTensorRow row;
    ASSERT_TRUE(obs::memLookup(&a, &row));
    EXPECT_EQ(row.primitive, "fuse");
    EXPECT_EQ(row.node_id, 7);

    // Registry longest-prefix match for metadata-only primitives.
    {
        obs::ModuleScope path("encoder.layer.0.attention");
        obs::memRecordAlloc(&b, 100);
    }
    ASSERT_TRUE(obs::memLookup(&b, &row));
    EXPECT_EQ(row.primitive, "checkpoint");
    EXPECT_EQ(row.module_path, "encoder.layer.0.attention");

    // Unscheduled allocation: baseline.
    obs::memRecordAlloc(&c, 100);
    ASSERT_TRUE(obs::memLookup(&c, &row));
    EXPECT_EQ(row.primitive, "baseline");

    obs::memRecordFree(&a);
    obs::memRecordFree(&b);
    obs::memRecordFree(&c);
    obs::clearProvenance();
}

// --- peak reports ---------------------------------------------------------

TEST(MemProfiler, PeakReportAttributesRowsAndTopTensors)
{
    ProfilerOn on;
    int a = 0, b = 0, c = 0;
    // Sizes comfortably above the snapshot hysteresis floor so each
    // watermark advance refreshes the peak snapshot.
    obs::memRecordAlloc(&a, 80000, MemCategory::Parameter);
    {
        obs::ModuleScope path("layer.1");
        obs::memRecordAlloc(&b, 48000);
    }
    obs::memRecordAlloc(&c, 16000, MemCategory::Gradient);
    obs::memRecordFree(&c); // peak was a+b+c

    obs::MemPeakReport report = obs::memPeakReport();
    EXPECT_EQ(report.peak_bytes, 144000);
    EXPECT_GE(report.attributedFraction(), 0.9);
    EXPECT_FALSE(report.rows.empty());
    EXPECT_FALSE(report.top.empty());
    EXPECT_GE(report.top[0].bytes, report.top.back().bytes);
    EXPECT_EQ(report.category_bytes[static_cast<int>(MemCategory::Parameter)],
              80000);

    const std::string json = report.toJson();
    EXPECT_TRUE(JsonValidator(json).valid()) << json;
    EXPECT_NE(json.find("\"kind\":\"mem_peak_report\""), std::string::npos);
    EXPECT_NE(json.find("\"top_tensors\""), std::string::npos);
    EXPECT_NE(json.find("\"retained_bytes\""), std::string::npos);

    obs::memRecordFree(&a);
    obs::memRecordFree(&b);
}

TEST(MemProfiler, MemWindowTracksInWindowPeak)
{
    ProfilerOn on;
    int pre = 0, in1 = 0, in2 = 0;
    obs::memRecordAlloc(&pre, 10000, MemCategory::Parameter);

    obs::MemWindow window;
    ASSERT_TRUE(window.active());
    // Opens at the current live level: a step that only *holds* memory
    // still reports what it held.
    EXPECT_EQ(window.peakBytes(), 10000);

    obs::memRecordAlloc(&in1, 4000);
    obs::memRecordAlloc(&in2, 2000, MemCategory::Gradient);
    obs::memRecordFree(&in1);

    // Window peak is the live high point while the window was open.
    EXPECT_EQ(window.peakBytes(), 16000);
    EXPECT_EQ(window.categoryPeakBytes(MemCategory::Parameter), 10000);
    EXPECT_EQ(window.categoryPeakBytes(MemCategory::Activation), 4000);
    EXPECT_EQ(window.categoryPeakBytes(MemCategory::Gradient), 2000);
    EXPECT_TRUE(JsonValidator(window.categoriesJson()).valid());

    obs::memRecordFree(&in2);
    obs::memRecordFree(&pre);
}

TEST(MemProfiler, InactiveWindowWhenDisabled)
{
    obs::setMemProfilingEnabled(false);
    obs::MemWindow window;
    EXPECT_FALSE(window.active());
    EXPECT_EQ(window.peakBytes(), 0);
}

// --- budget watchdog ------------------------------------------------------

TEST(MemProfiler, BudgetWarnDumpsForensicsAndRearms)
{
    ProfilerOn on;
    const std::string dump = scratchPath("budget_dump.json");
    const std::string log = scratchPath("budget_run.jsonl");
    obs::openRunLog(log);
    obs::setMemDumpPath(dump);
    obs::setMemBudget(4096, obs::MemBudgetAction::Warn);

    int a = 0, b = 0;
    obs::memRecordAlloc(&a, 3000);
    obs::memRecordAlloc(&b, 3000); // crosses: forensics, no throw
    EXPECT_EQ(obs::memLiveBytes(), 6000);

    // The dump file is the full peak report.
    const auto dump_lines = readLines(dump);
    ASSERT_FALSE(dump_lines.empty());
    std::string dump_json;
    for (const std::string& l : dump_lines) dump_json += l;
    EXPECT_TRUE(JsonValidator(dump_json).valid()) << dump_json;
    EXPECT_NE(dump_json.find("mem_peak_report"), std::string::npos);

    // The run log carries a mem.budget record with the raw report.
    obs::closeRunLog();
    const auto log_lines = readLines(log);
    ASSERT_FALSE(log_lines.empty());
    bool saw_budget = false;
    for (const std::string& l : log_lines) {
        if (l.find("\"kind\":\"mem.budget\"") != std::string::npos) {
            saw_budget = true;
            EXPECT_TRUE(JsonValidator(l).valid()) << l;
            EXPECT_NE(l.find("\"budget_bytes\":4096"), std::string::npos);
            EXPECT_NE(l.find("\"action\":\"warn\""), std::string::npos);
        }
    }
    EXPECT_TRUE(saw_budget);

    // Edge-triggered: staying above the budget does not re-dump...
    std::remove(dump.c_str());
    int c = 0;
    obs::memRecordAlloc(&c, 1000);
    EXPECT_TRUE(readLines(dump).empty());
    // ...but falling below re-arms the watchdog.
    obs::memRecordFree(&a);
    obs::memRecordFree(&b);
    obs::memRecordFree(&c);
    int d = 0;
    obs::memRecordAlloc(&d, 8192);
    EXPECT_FALSE(readLines(dump).empty());
    obs::memRecordFree(&d);
}

TEST(MemProfiler, BudgetThrowRollsBackTheAllocation)
{
    ProfilerOn on;
    obs::setMemBudget(4096, obs::MemBudgetAction::Throw);

    int a = 0;
    obs::memRecordAlloc(&a, 3000);
    const int64_t live_before = obs::memLiveBytes();
    const int64_t entries_before = obs::memRegistrySize();

    int b = 0;
    try {
        obs::memRecordAlloc(&b, 3000);
        FAIL() << "expected MemoryBudgetExceeded";
    } catch (const MemoryBudgetExceeded& e) {
        EXPECT_EQ(e.budgetBytes(), 4096);
        EXPECT_GT(e.liveBytes(), 4096);
    }
    // The offending entry was rolled back before the throw.
    EXPECT_EQ(obs::memLiveBytes(), live_before);
    EXPECT_EQ(obs::memRegistrySize(), entries_before);

    obs::memRecordFree(&a);
}

TEST(MemProfiler, BudgetThrowFailsTensorConstructionCleanly)
{
    ProfilerOn on;
    obs::setMemBudget(1024, obs::MemBudgetAction::Throw);
    EXPECT_THROW(Tensor::zeros({64, 64}), MemoryBudgetExceeded);
    // TensorStorage's ctor released the buffer and undid the metrics.
    EXPECT_EQ(obs::memLiveBytes(), 0);
    EXPECT_EQ(obs::memRegistrySize(), 0);
    obs::setMemBudget(-1);
    // A small tensor still works (the watchdog is armed, not tripped).
    Tensor ok = Tensor::zeros({2, 2});
    // The registry records the pooled buffer's capacity, which may
    // round up past the logical payload.
    EXPECT_GE(obs::memLiveBytes(), ok.bytes());
    EXPECT_EQ(obs::memRegistrySize(), 1);
}

TEST(MemProfiler, ScratchNeverThrows)
{
    ProfilerOn on;
    obs::setMemBudget(16, obs::MemBudgetAction::Throw);
    // Kernel temporaries over budget are recorded, never thrown on.
    int k = 0;
    EXPECT_NO_THROW(obs::memRecordScratch(&k, 4096));
    EXPECT_EQ(obs::memCategoryLiveBytes(MemCategory::Scratch), 4096);
    obs::memRecordFree(&k);
}

// --- end-to-end: scheduled transformer ------------------------------------

TEST(MemProfiler, ScheduledTransformerPeakIsAttributed)
{
    obs::clearProvenance();
    ProfilerOn on;
    obs::metrics().reset();

    // Fused + sharded + checkpointed + pipeline-split model, built and
    // trained entirely under the profiler so every byte is tagged.
    auto inner = models::buildTinyModel("bert");
    auto model = runtime::withCrossEntropyLoss(inner);
    model->initializeParams(211);
    auto sch = core::Schedule::create(model, 2);

    core::Schedule& ffn = (*sch)["model.encoder.layer.0.ffn"];
    ffn["fc1"].decompose();
    nn::TraceOptions options;
    options.flatten = true;
    ffn.trace({{2, 8, 16}}, options);
    auto matches = ffn.find(graph::Pattern::chain({"add", "gelu"}));
    ASSERT_FALSE(matches.empty());
    ffn.fuse(matches[0]);

    (*sch)["model.encoder.layer.1.ffn.fc1"].shard("weight", 0);
    (*sch)["model.encoder.layer.1.ffn.fc1"].shard("bias", 0);
    (*sch)["model.encoder.layer.1.ffn.fc2"].shard("weight", 1);
    (*sch)["model.encoder.layer.1.ffn.fc2"].sync(nn::SyncDirection::Forward);
    (*sch)["model.encoder.layer.0.attention"].checkpoint();
    (*sch)["model.encoder.layer.0"].pipelineSplit();

    Tensor ids = Tensor::randint({2, 8}, 64, 221);
    Tensor targets = Tensor::randint({2, 8}, 64, 223);

    runtime::DistExecutor executor(2);
    auto replicas = executor.replicate(*model);
    executor.run(replicas,
                 [&](int /*rank*/, nn::Module& m, runtime::ProcessGroup&) {
                     runtime::AutogradEngine engine;
                     runtime::GradResult result =
                         engine.run(m, {ids, targets});
                     ASSERT_FALSE(result.outputs.empty());
                 });

    obs::MemPeakReport report = obs::memPeakReport();
    ASSERT_GT(report.peak_bytes, 0);

    // Acceptance gate: >= 90% of the peak is attributed to (category,
    // module, primitive) rows...
    EXPECT_GE(report.attributedFraction(), 0.9)
        << "attributed " << report.attributed_bytes << " of "
        << report.peak_bytes << "\n"
        << report.toJson();
    // ...and the tagged peak tracks the global tensor.peak_bytes
    // watermark (everything allocated since reset went through the
    // registry; scratch temporaries are registry-only).
    EXPECT_GE(report.attributed_bytes,
              (obs::metrics().tensor_live_bytes.peak() * 9) / 10);

    // The schedule is visible in the rows: sharded parameters and
    // baseline activations both present, every row fully labelled.
    bool saw_shard_param = false;
    for (const obs::MemRow& row : report.rows) {
        EXPECT_FALSE(row.primitive.empty());
        if (row.category == MemCategory::Parameter &&
            row.primitive == "shard") {
            saw_shard_param = true;
        }
    }
    EXPECT_TRUE(saw_shard_param) << report.toJson();
    EXPECT_GT(report.category_bytes[static_cast<int>(MemCategory::Parameter)],
              0);
    EXPECT_TRUE(JsonValidator(report.toJson()).valid());
    obs::clearProvenance();
}

TEST(MemProfiler, CheckpointingLowersActivationBytesAtPeak)
{
    obs::clearProvenance();
    ProfilerOn on;

    Tensor ids = Tensor::randint({4, 16}, 64, 501);
    Tensor targets = Tensor::randint({4, 16}, 64, 503);

    auto peak_activations = [&](bool checkpointed) {
        auto model =
            runtime::withCrossEntropyLoss(models::buildTinyModel("bert"));
        model->initializeParams(601);
        if (checkpointed) {
            auto sch = core::Schedule::create(model);
            (*sch)["model.encoder.layer.0"].checkpoint();
            (*sch)["model.encoder.layer.1"].checkpoint();
        }
        obs::memProfilerReset();
        runtime::AutogradEngine engine;
        runtime::GradResult result = engine.run(*model, {ids, targets});
        EXPECT_FALSE(result.outputs.empty());
        obs::MemPeakReport report = obs::memPeakReport();
        return report
            .category_bytes[static_cast<int>(MemCategory::Activation)];
    };

    const int64_t without = peak_activations(false);
    const int64_t with = peak_activations(true);
    EXPECT_GT(without, 0);
    // Strictly lower: the evicted layer tape is gone at the peak.
    EXPECT_LT(with, without)
        << "checkpointed " << with << " vs baseline " << without;
    obs::clearProvenance();
}

// --- step report / run log integration ------------------------------------

TEST(MemProfiler, TrainerStepReportCarriesMemorySection)
{
    obs::clearProvenance();
    ProfilerOn on;
    obs::setStepReportsEnabled(true);
    auto model =
        runtime::withCrossEntropyLoss(models::buildTinyModel("bert"));
    model->initializeParams(101);
    runtime::Trainer trainer(model);
    std::vector<std::vector<Tensor>> micros = {
        {Tensor::randint({1, 8}, 64, 110), Tensor::randint({1, 8}, 64, 120)},
    };
    trainer.step(micros);
    const obs::StepReport& report = trainer.lastStepReport();
    obs::setStepReportsEnabled(false);

    EXPECT_GT(report.mem_peak_bytes, 0);
    ASSERT_FALSE(report.mem_category_bytes.empty());
    int64_t categorized = 0;
    for (const auto& [name, bytes] : report.mem_category_bytes) {
        EXPECT_FALSE(name.empty());
        categorized += bytes;
    }
    EXPECT_GT(categorized, 0);

    const std::string json = report.toJson();
    EXPECT_TRUE(JsonValidator(json).valid());
    EXPECT_NE(json.find("\"memory\""), std::string::npos);
    EXPECT_NE(json.find("\"retained_bytes\""), std::string::npos);
    EXPECT_NE(json.find("\"schema_version\":2"), std::string::npos);
    obs::clearProvenance();
}

// --- tuner: measured vs predicted memory ----------------------------------

TEST(MemProfiler, TunerTrialsLogMeasuredAndSimPeak)
{
    ProfilerOn on;
    const std::string log = scratchPath("tuner_mem.jsonl");
    obs::openRunLog(log);

    tuner::SearchSpace space;
    space.addVar("mb", {1, 2});
    // Each trial allocates measurably and "simulates" a prediction the
    // way sim::TrainingSimulator::simulate does.
    tuner::EvalFn eval = [](const tuner::Config& c) {
        const int64_t n = static_cast<int64_t>(c.at("mb")) * 64;
        Tensor t = Tensor::zeros({n, 64});
        obs::reportSimPeakBytes(static_cast<double>(t.bytes()));
        return 1.0 / static_cast<double>(n);
    };
    tuner::TuneResult result = tuner::exhaustiveSearch(space, eval);
    EXPECT_EQ(result.evaluated, 2);
    obs::closeRunLog();

    const auto lines = readLines(log);
    int trials = 0;
    for (const std::string& l : lines) {
        if (l.find("\"kind\":\"tuner.trial\"") == std::string::npos) {
            continue;
        }
        ++trials;
        EXPECT_TRUE(JsonValidator(l).valid()) << l;
        // Every trial records measured peak, the sim prediction, and
        // the relative error of the prediction.
        EXPECT_NE(l.find("\"mem_peak_bytes\""), std::string::npos) << l;
        EXPECT_NE(l.find("\"mem_sim_peak_bytes\""), std::string::npos) << l;
        EXPECT_NE(l.find("\"mem_rel_error\""), std::string::npos) << l;
        EXPECT_NE(l.find("\"mem_categories\""), std::string::npos) << l;
    }
    EXPECT_EQ(trials, 2);
}

TEST(MemProfiler, TunerPrunesConfigsOverMeasuredBudget)
{
    ProfilerOn on;
    const std::string log = scratchPath("tuner_prune.jsonl");
    obs::openRunLog(log);

    // Budget between the two configs' measured peaks: mb=1 allocates
    // 16 KiB, mb=4 allocates 64 KiB.
    obs::setMemBudget(32 * 1024, obs::MemBudgetAction::Warn);

    tuner::SearchSpace space;
    space.addVar("mb", {1, 4});
    tuner::EvalFn eval = [](const tuner::Config& c) {
        const int64_t n = static_cast<int64_t>(c.at("mb")) * 64;
        Tensor t = Tensor::zeros({n, 64});
        return static_cast<double>(n); // bigger would win on throughput
    };
    tuner::TuneResult result = tuner::exhaustiveSearch(space, eval);
    obs::closeRunLog();

    // The over-budget config was coerced to infeasible: the small one
    // wins despite the lower raw value.
    EXPECT_EQ(static_cast<int>(result.best.at("mb")), 1);

    bool saw_pruned = false;
    for (const std::string& l : readLines(log)) {
        if (l.find("\"pruned_over_budget\":true") != std::string::npos) {
            saw_pruned = true;
            EXPECT_NE(l.find("\"value\":0"), std::string::npos) << l;
        }
    }
    EXPECT_TRUE(saw_pruned);
}

// --- elastic rank re-attribution ------------------------------------------

TEST(MemProfiler, RetagRankMovesOwnership)
{
    ProfilerOn on;
    int a = 0;
    obs::setMemThreadRank(3);
    obs::memRecordAlloc(&a, 100);
    obs::setMemThreadRank(-1);

    obs::MemTensorRow row;
    ASSERT_TRUE(obs::memLookup(&a, &row));
    EXPECT_EQ(row.rank, 3);

    obs::memRetagRank(&a, 1);
    ASSERT_TRUE(obs::memLookup(&a, &row));
    EXPECT_EQ(row.rank, 1);

    int unknown = 0;
    obs::memRetagRank(&unknown, 0); // ignored
    obs::memRecordFree(&a);
}

} // namespace
} // namespace slapo
