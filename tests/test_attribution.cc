/**
 * @file
 * Schedule-aware step attribution: primitive provenance on graph nodes,
 * the provenance registry, per-step attributed reports, and the report
 * diff / regression gate (docs/OBSERVABILITY.md, "Attribution & step
 * reports").
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/schedule.h"
#include "dialects/deepspeed_dialect.h"
#include "graph/pattern.h"
#include "json_validator.h"
#include "models/registry.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/provenance.h"
#include "obs/step_report.h"
#include "runtime/autograd.h"
#include "runtime/dist_executor.h"
#include "runtime/pipeline_runtime.h"
#include "runtime/trainer.h"

namespace slapo {
namespace {

using testutil::JsonValidator;

const obs::PrimitiveTotal*
findPrimitive(const obs::StepReport& report, const std::string& name)
{
    for (const obs::PrimitiveTotal& p : report.primitives) {
        if (p.primitive == name) {
            return &p;
        }
    }
    return nullptr;
}

// --- provenance stamping on graph nodes ---------------------------------

TEST(Provenance, FuseStampsFusedNodeAndInnerClones)
{
    obs::clearProvenance();
    auto model = models::buildTinyModel("bert");
    auto sch = core::Schedule::create(model);
    core::Schedule& ffn = (*sch)["encoder.layer.0.ffn"];
    ffn["fc1"].decompose();
    nn::TraceOptions options;
    options.flatten = true;
    ffn.trace({{2, 8, 16}}, options);
    // Untouched traced nodes carry no provenance.
    for (graph::Node* n : ffn.graph().nodes()) {
        EXPECT_FALSE(n->hasProvenance());
    }

    auto matches = ffn.find(graph::Pattern::chain({"add", "gelu"}));
    ASSERT_FALSE(matches.empty());
    ffn.fuse(matches[0]);

    graph::Node* fused = nullptr;
    for (graph::Node* n : ffn.graph().nodes()) {
        if (n->kind() == graph::NodeKind::FusedOp) {
            fused = n;
        }
    }
    ASSERT_NE(fused, nullptr);
    EXPECT_EQ(fused->provenance().primitive, "fuse");
    EXPECT_EQ(fused->provenance().module_path, "encoder.layer.0.ffn");
    EXPECT_GE(fused->provenance().apply_seq, 0);
    // The inner clones the autograd engine executes individually carry
    // the same stamp, so fused compute never falls back to baseline.
    ASSERT_NE(fused->subgraph(), nullptr);
    for (graph::Node* inner : fused->subgraph()->nodes()) {
        EXPECT_EQ(inner->provenance().primitive, "fuse");
    }
}

TEST(Provenance, ClonePreservesStamps)
{
    obs::clearProvenance();
    auto model = models::buildTinyModel("bert");
    auto sch = core::Schedule::create(model);
    core::Schedule& ffn = (*sch)["encoder.layer.0.ffn"];
    ffn["fc1"].decompose();
    nn::TraceOptions options;
    options.flatten = true;
    ffn.trace({{2, 8, 16}}, options);
    auto matches = ffn.find(graph::Pattern::chain({"add", "gelu"}));
    ASSERT_FALSE(matches.empty());
    ffn.fuse(matches[0]);

    auto cloned = ffn.graph().clone();
    int stamped = 0;
    for (graph::Node* n : cloned->nodes()) {
        if (n->kind() == graph::NodeKind::FusedOp) {
            EXPECT_EQ(n->provenance().primitive, "fuse");
            ++stamped;
        }
    }
    EXPECT_EQ(stamped, 1);
}

// --- provenance registry ------------------------------------------------

TEST(Provenance, RegistryLongestPrefixWinsAndSyncIsSkipped)
{
    obs::clearProvenance();
    EXPECT_EQ(obs::lookupProvenance("encoder.layer.0"), nullptr);

    obs::recordPrimitive("checkpoint", "encoder.layer.0");
    obs::recordPrimitive("shard", "encoder.layer.0.ffn.fc1");
    obs::recordPrimitive("sync", "encoder.layer.0.ffn.fc1");
    obs::recordPrimitive("trace", "encoder.layer.0");
    EXPECT_EQ(obs::provenanceCount(), 4);

    // Exact path: the shard record wins (sync/trace never claim compute).
    const obs::ProvenanceRecord* rec =
        obs::lookupProvenance("encoder.layer.0.ffn.fc1");
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->primitive, "shard");

    // Sibling subtree: falls back to the enclosing checkpoint.
    rec = obs::lookupProvenance("encoder.layer.0.attention.self");
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->primitive, "checkpoint");

    // Unscheduled subtree: baseline.
    EXPECT_EQ(obs::lookupProvenance("pooler.dense"), nullptr);

    obs::clearProvenance();
    EXPECT_EQ(obs::provenanceCount(), 0);
}

TEST(Provenance, RootRecordClaimsEverything)
{
    obs::clearProvenance();
    obs::recordPrimitive("decompose", "");
    const obs::ProvenanceRecord* rec = obs::lookupProvenance("a.b.c");
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->primitive, "decompose");
    obs::clearProvenance();
}

TEST(Provenance, SchedulePrimitivesRecordIntoRegistry)
{
    obs::clearProvenance();
    auto model = models::buildTinyModel("bert");
    auto sch = core::Schedule::create(model, 2);
    (*sch)["pooler.dense"].shard("weight", 0);
    (*sch)["encoder.layer.1"].checkpoint();
    (*sch)["encoder.layer.0"].pipelineSplit();

    bool saw_shard = false, saw_checkpoint = false, saw_split = false;
    for (const obs::ProvenanceRecord& r : obs::provenanceRecords()) {
        saw_shard |= r.primitive == "shard" &&
                     r.module_path == "pooler.dense";
        saw_checkpoint |= r.primitive == "checkpoint" &&
                          r.module_path == "encoder.layer.1";
        saw_split |= r.primitive == "pipeline_split" &&
                     r.module_path == "encoder.layer.0";
    }
    EXPECT_TRUE(saw_shard);
    EXPECT_TRUE(saw_checkpoint);
    EXPECT_TRUE(saw_split);
    obs::clearProvenance();
}

// --- report building from profiler rows ---------------------------------

TEST(StepReport, BuildAttributesRowsAndDecomposesWall)
{
    obs::clearProvenance();
    obs::recordPrimitive("shard", "enc.fc1");

    obs::OpProfiler profiler;
    profiler.record("LinearOp", "enc.fc1", 4000000);         // registry
    profiler.record("GeluOp", "enc.act", 1000000);           // baseline
    profiler.record("FusedOp", "enc.ffn", "fuse", 2000000);  // stamped
    profiler.record("sync", "enc.fc1", "sync", 3000000);     // comm

    std::vector<std::pair<std::string, int64_t>> window = {
        {"pg.wait_ns", 500000},
        {"pipeline.queue_wait_ns", 0},
        {"alloc.pool_hits", 3},
    };
    obs::StepReport report =
        obs::buildStepReport(profiler, window, 12000000, 1, 7);

    EXPECT_EQ(report.step, 7);
    EXPECT_EQ(report.compute_ns, 7000000); // shard + baseline + fuse
    EXPECT_EQ(report.comm_ns, 3000000);
    EXPECT_EQ(report.pg_wait_ns, 500000);
    EXPECT_EQ(report.other_ns, 2000000); // 12 − 7 − 3
    EXPECT_EQ(report.alloc_pool_hits, 3);

    const obs::PrimitiveTotal* shard = findPrimitive(report, "shard");
    ASSERT_NE(shard, nullptr);
    EXPECT_EQ(shard->total_ns, 4000000);
    const obs::PrimitiveTotal* baseline = findPrimitive(report, "baseline");
    ASSERT_NE(baseline, nullptr);
    EXPECT_EQ(baseline->total_ns, 1000000);
    EXPECT_NE(findPrimitive(report, "fuse"), nullptr);
    EXPECT_NE(findPrimitive(report, "sync"), nullptr);
    for (const obs::AttributedOp& op : report.ops) {
        EXPECT_FALSE(op.primitive.empty());
    }

    // (4+1+2+3)/12 of the wall is attributed.
    EXPECT_NEAR(report.attributedFraction(), 10.0 / 12.0, 1e-9);
    EXPECT_TRUE(JsonValidator(report.toJson()).valid()) << report.toJson();
    obs::clearProvenance();
}

TEST(StepReport, WorldSizeNormalizesToPerRankMeans)
{
    obs::clearProvenance();
    obs::OpProfiler profiler;
    // Two ranks each spent 3 ms: the report shows the per-rank mean.
    profiler.record("LinearOp", "m", 3000000);
    profiler.record("LinearOp", "m", 3000000);
    obs::StepReport report =
        obs::buildStepReport(profiler, {}, 3500000, 2, 0);
    EXPECT_EQ(report.compute_ns, 3000000);
    const obs::PrimitiveTotal* baseline = findPrimitive(report, "baseline");
    ASSERT_NE(baseline, nullptr);
    EXPECT_EQ(baseline->total_ns, 3000000);
    EXPECT_GT(report.attributedFraction(), 0.85);
}

// --- diff + regression gate ---------------------------------------------

TEST(ReportDiff, FlagsInjectedRegressionIgnoresNoiseFloor)
{
    obs::StepReport before, after;
    before.wall_ns = 10000000;
    after.wall_ns = 16000000;
    before.primitives = {{"fuse", 5000000, 10}, {"tiny", 1000, 1}};
    after.primitives = {{"fuse", 9000000, 10}, {"tiny", 900000, 1}};

    obs::ReportDiff diff = obs::diffReports(before, after);
    EXPECT_NEAR(diff.wall_pct, 60.0, 1e-9);
    ASSERT_TRUE(diff.hasRegressions());
    ASSERT_EQ(diff.regressions.size(), 1u);
    EXPECT_EQ(diff.regressions[0].key, "primitive:fuse");
    EXPECT_NEAR(diff.regressions[0].pct, 80.0, 1e-9);
    EXPECT_TRUE(JsonValidator(diff.toJson()).valid()) << diff.toJson();

    // Sub-floor rows are noise, never regressions, even at +900x.
    for (const obs::ReportDelta& d : diff.primitives) {
        if (d.key == "primitive:tiny") {
            EXPECT_FALSE(d.regression);
        }
    }
}

TEST(ReportDiff, IdenticalReportsHaveZeroRegressions)
{
    obs::StepReport report;
    report.wall_ns = 10000000;
    report.primitives = {{"baseline", 6000000, 40}, {"shard", 3000000, 8}};
    report.ops.push_back({"LinearOp", "enc.fc1", "shard", 8, 3000000,
                          375000.0, 400000});
    obs::ReportDiff diff = obs::diffReports(report, report);
    EXPECT_FALSE(diff.hasRegressions());
    EXPECT_EQ(diff.wall_pct, 0.0);
}

TEST(ReportDiff, NewWorkAboveFloorIsFlagged)
{
    obs::StepReport before, after;
    before.wall_ns = after.wall_ns = 10000000;
    after.primitives = {{"replace", 5000000, 4}};
    obs::ReportDiff diff = obs::diffReports(before, after);
    ASSERT_TRUE(diff.hasRegressions());
    EXPECT_EQ(diff.regressions[0].key, "primitive:replace");
}

// --- end-to-end: scheduled transformer training step --------------------

TEST(Attribution, ScheduledTransformerStepCoversWall)
{
    obs::clearProvenance();
    auto inner = models::buildTinyModel("bert");
    auto model = runtime::withCrossEntropyLoss(inner);
    model->initializeParams(211);
    auto sch = core::Schedule::create(model, 2);

    // Fusion (stamped graph rewrite) on layer-0's ffn.
    core::Schedule& ffn = (*sch)["model.encoder.layer.0.ffn"];
    ffn["fc1"].decompose();
    nn::TraceOptions options;
    options.flatten = true;
    ffn.trace({{2, 8, 16}}, options);
    auto matches = ffn.find(graph::Pattern::chain({"add", "gelu"}));
    ASSERT_FALSE(matches.empty());
    ffn.fuse(matches[0]);

    // Tensor parallelism (registry-attributed) on layer-1's ffn.
    (*sch)["model.encoder.layer.1.ffn.fc1"].shard("weight", 0);
    (*sch)["model.encoder.layer.1.ffn.fc1"].shard("bias", 0);
    (*sch)["model.encoder.layer.1.ffn.fc2"].shard("weight", 1);
    (*sch)["model.encoder.layer.1.ffn.fc2"].sync(nn::SyncDirection::Forward);

    // Activation checkpointing on layer-0's attention, and a pipeline
    // boundary mark after layer 0.
    (*sch)["model.encoder.layer.0.attention"].checkpoint();
    (*sch)["model.encoder.layer.0"].pipelineSplit();

    Tensor ids = Tensor::randint({2, 8}, 64, 221);
    Tensor targets = Tensor::randint({2, 8}, 64, 223);

    runtime::DistExecutor executor(2);
    auto replicas = executor.replicate(*model);

    obs::StepReportBuilder builder(2);
    executor.run(replicas,
                 [&](int /*rank*/, nn::Module& m, runtime::ProcessGroup&) {
                     for (int it = 0; it < 8; ++it) {
                         runtime::AutogradEngine engine;
                         runtime::GradResult result =
                             engine.run(m, {ids, targets});
                         ASSERT_FALSE(result.outputs.empty());
                     }
                 });
    obs::StepReport report = builder.finish(0);

    EXPECT_GT(report.wall_ns, 0);
    EXPECT_EQ(report.world_size, 2);

    // The acceptance gate: per-primitive times account for >= 95% of the
    // step's wall time.
    EXPECT_GE(report.attributedFraction(), 0.95)
        << "attributed fraction " << report.attributedFraction() << "\n"
        << report.toJson();

    // Every applied primitive shows up; baseline covers the unscheduled
    // modules (embeddings, pooler, layer-1 attention, loss head).
    EXPECT_NE(findPrimitive(report, "fuse"), nullptr);
    EXPECT_NE(findPrimitive(report, "shard"), nullptr);
    EXPECT_NE(findPrimitive(report, "sync"), nullptr);
    EXPECT_NE(findPrimitive(report, "checkpoint"), nullptr);
    const obs::PrimitiveTotal* baseline = findPrimitive(report, "baseline");
    ASSERT_NE(baseline, nullptr);
    EXPECT_GT(baseline->total_ns, 0);

    // Rows never carry an empty primitive, and the sharded module rolls
    // up under "shard".
    for (const obs::AttributedOp& op : report.ops) {
        EXPECT_FALSE(op.primitive.empty()) << op.op << "@" << op.module_path;
    }
    bool fc1_sharded = false;
    for (const obs::ModuleTotal& m : report.modules) {
        if (m.module_path == "model.encoder.layer.1.ffn.fc1") {
            fc1_sharded = m.primitive == "shard";
        }
    }
    EXPECT_TRUE(fc1_sharded);

    EXPECT_TRUE(JsonValidator(report.toJson()).valid());
    obs::clearProvenance();
}

TEST(Attribution, SameSeedRunsDiffClean)
{
    // Two identical runs of the same step must never flag a regression
    // under the default thresholds (the determinism acceptance).
    obs::clearProvenance();
    auto model =
        runtime::withCrossEntropyLoss(models::buildTinyModel("bert"));
    model->initializeParams(401);
    Tensor ids = Tensor::randint({2, 8}, 64, 311);
    Tensor targets = Tensor::randint({2, 8}, 64, 313);
    auto single_run = [&] {
        obs::StepReportBuilder builder(1);
        runtime::AutogradEngine engine;
        engine.run(*model, {ids, targets});
        return builder.finish(0);
    };
    // Each report folds several engine runs by per-row MINIMUM: a
    // scheduler preemption spike inflates one run's rows but never the
    // minimum across runs, while a systematic slowdown (the thing
    // diffReports exists to catch) inflates every run and survives.
    auto run_once = [&] {
        obs::StepReport merged = single_run();
        for (int it = 1; it < 8; ++it) {
            obs::StepReport next = single_run();
            merged.wall_ns = std::min(merged.wall_ns, next.wall_ns);
            auto fold = [](auto& rows, const auto& other, auto key) {
                for (auto& row : rows) {
                    for (const auto& candidate : other) {
                        if (key(candidate) == key(row)) {
                            row.total_ns =
                                std::min(row.total_ns, candidate.total_ns);
                            break;
                        }
                    }
                }
            };
            fold(merged.ops, next.ops, [](const obs::AttributedOp& r) {
                return r.op + "@" + r.module_path;
            });
            fold(merged.primitives, next.primitives,
                 [](const obs::PrimitiveTotal& r) { return r.primitive; });
        }
        return merged;
    };
    obs::StepReport warm = run_once(); // warm trace cache / pool / allocator
    // A loaded CI box can make the second run *genuinely* slower, or
    // make both runs mostly preemption gaps; that is a correct diff,
    // not an attribution bug. Only assert on a pair of runs whose
    // walls match each other AND are not inflated over the fastest run
    // seen (retry a few times), and skip when the machine never quiets
    // down. A systematic attribution bug fails every comparable pair
    // on a quiet box, so the skip cannot mask one.
    int64_t best_wall = warm.wall_ns;
    for (int attempt = 0; attempt < 5; ++attempt) {
        obs::StepReport a = run_once();
        obs::StepReport b = run_once();
        best_wall = std::min({best_wall, a.wall_ns, b.wall_ns});
        obs::ReportDiff diff = obs::diffReports(a, b);
        if (std::abs(diff.wall_pct) > 10.0 ||
            a.wall_ns > 2 * best_wall || b.wall_ns > 2 * best_wall) {
            continue;
        }
        EXPECT_FALSE(diff.hasRegressions()) << diff.toJson();
        return;
    }
    GTEST_SKIP() << "machine too loaded for comparable same-seed runs";
}

// --- pipeline bubble accounting -----------------------------------------

TEST(Attribution, PipelineRunReportsBubbleTime)
{
    obs::clearProvenance();
    auto model = models::buildTinyModel("opt");
    model->initializeParams(3);
    auto sch = core::Schedule::create(model, 4);
    (*sch)["decoder.layer.0"].pipelineSplit();
    auto stages = core::partitionPipeline(*sch, {{1, 8}});
    ASSERT_GE(stages.size(), 2u);
    auto wrapped = dialects::wrapForDeepSpeedPipeline(stages);
    runtime::PipelineRuntime pipeline(wrapped);

    std::vector<std::vector<Tensor>> micros;
    for (int m = 0; m < 6; ++m) {
        micros.push_back({Tensor::randint({1, 8}, 64, 5 + m)});
    }
    obs::StepReportBuilder builder(1);
    runtime::PipelineRunResult result = pipeline.forward(micros);
    obs::StepReport report = builder.finish(0);

    EXPECT_EQ(result.outputs.size(), micros.size());
    EXPECT_GT(report.wall_ns, 0);
    EXPECT_GT(report.compute_ns, 0);
    EXPECT_GE(report.pipeline_bubble_ns, 0);
    EXPECT_GE(report.other_ns, 0);
    EXPECT_FALSE(report.ops.empty());
    EXPECT_TRUE(JsonValidator(report.toJson()).valid());
    obs::clearProvenance();
}

// --- trainer integration ------------------------------------------------

TEST(Attribution, TrainerPublishesLastStepReport)
{
    obs::clearProvenance();
    obs::setStepReportsEnabled(false);
    auto model =
        runtime::withCrossEntropyLoss(models::buildTinyModel("bert"));
    model->initializeParams(101);
    runtime::Trainer trainer(model);
    std::vector<std::vector<Tensor>> micros = {
        {Tensor::randint({1, 8}, 64, 110), Tensor::randint({1, 8}, 64, 120)},
    };

    // Disabled: the report member stays untouched.
    trainer.step(micros);
    EXPECT_EQ(trainer.lastStepReport().step, -1);

    obs::setStepReportsEnabled(true);
    trainer.step(micros);
    const obs::StepReport& report = trainer.lastStepReport();
    EXPECT_EQ(report.step, 1); // second optimizer step
    EXPECT_FALSE(report.primitives.empty());
    // The optimizer's own work is explicitly baseline.
    bool saw_optimizer = false;
    for (const obs::AttributedOp& op : report.ops) {
        if (op.op == "optimizer.step") {
            saw_optimizer = true;
            EXPECT_EQ(op.primitive, "baseline");
        }
    }
    EXPECT_TRUE(saw_optimizer);
    EXPECT_GT(report.attributedFraction(), 0.5);
    obs::setStepReportsEnabled(false);
}

TEST(Attribution, DataParallelReportHasPerRankSpreadAndGradExchange)
{
    obs::clearProvenance();
    obs::setStepReportsEnabled(true);
    auto model =
        runtime::withCrossEntropyLoss(models::buildTinyModel("bert"));
    model->initializeParams(131);
    runtime::DataParallelTrainer dp(*model, 2);
    std::vector<std::vector<Tensor>> micros = {
        {Tensor::randint({1, 8}, 64, 141), Tensor::randint({1, 8}, 64, 142)},
        {Tensor::randint({1, 8}, 64, 143), Tensor::randint({1, 8}, 64, 144)},
    };
    dp.step(micros);
    const obs::StepReport& report = dp.lastStepReport();
    obs::setStepReportsEnabled(false);

    EXPECT_EQ(report.step, 0);
    EXPECT_EQ(report.world_size, 2);

    // The bucketed gradient all-reduce is attributed to data_parallel...
    const obs::PrimitiveTotal* data_parallel =
        findPrimitive(report, "data_parallel");
    ASSERT_NE(data_parallel, nullptr);
    bool saw_exchange = false, saw_bwd = false;
    for (const obs::AttributedOp& op : report.ops) {
        saw_exchange |= op.op == "grad.exchange";
        saw_bwd |= op.op.size() > 4 &&
                   op.op.compare(op.op.size() - 4, 4, ".bwd") == 0;
    }
    EXPECT_TRUE(saw_exchange);
    // ...and the backward rows keep their .bwd suffix under it.
    EXPECT_TRUE(saw_bwd);

    // Cross-rank spread rides along for straggler detection.
    ASSERT_FALSE(report.per_rank_json.empty());
    EXPECT_TRUE(JsonValidator(report.per_rank_json).valid());
    EXPECT_NE(report.per_rank_json.find("\"pg.wait_ns\""),
              std::string::npos);
    EXPECT_TRUE(JsonValidator(report.toJson()).valid());
}

} // namespace
} // namespace slapo
