/** @file Tests of the fault-tolerant runtime: failpoint injection,
 * collective abort/timeout (no deadlocks), shape validation at deposit
 * time, and bit-exact checkpoint/restore recovery in both trainers.
 * The acceptance bar: an interrupted-and-recovered run must finish with
 * parameters *bitwise identical* to an uninterrupted one. */
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "models/registry.h"
#include "nn/layers.h"
#include "runtime/checkpoint.h"
#include "runtime/dist_executor.h"
#include "runtime/pipeline_runtime.h"
#include "runtime/trainer.h"
#include "support/failpoint.h"

namespace slapo {
namespace runtime {
namespace {

namespace fp = support::failpoint;
using nn::ModulePtr;

/** Fresh, empty scratch directory under the gtest temp root. */
std::string
scratchDir(const std::string& name)
{
    const auto dir = std::filesystem::path(::testing::TempDir()) /
                     ("slapo_fault_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

bool
bitwiseEqual(const Tensor& a, const Tensor& b)
{
    return a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(),
                       static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

/** Every parameter of `a` bitwise equal to the corresponding one of `b`. */
::testing::AssertionResult
paramsBitwiseEqual(nn::Module& a, nn::Module& b)
{
    auto pa = a.namedParams();
    auto pb = b.namedParams();
    if (pa.size() != pb.size()) {
        return ::testing::AssertionFailure()
               << "param count " << pa.size() << " vs " << pb.size();
    }
    for (size_t i = 0; i < pa.size(); ++i) {
        if (!bitwiseEqual(*pa[i].second, *pb[i].second)) {
            return ::testing::AssertionFailure()
                   << "bitwise mismatch at '" << pa[i].first << "' (max diff "
                   << Tensor::maxAbsDiff(*pa[i].second, *pb[i].second) << ")";
        }
    }
    return ::testing::AssertionSuccess();
}

ModulePtr
buildLossModel(uint64_t seed)
{
    auto model = withCrossEntropyLoss(models::buildTinyModel("bert"));
    model->initializeParams(seed);
    return model;
}

/** Deterministic micro-batch per step (single-process trainer). */
std::vector<std::vector<Tensor>>
stepBatch(int64_t step)
{
    return {{Tensor::randint({2, 8}, 64, 1000 + step),
             Tensor::randint({2, 8}, 64, 2000 + step)}};
}

/** Deterministic per-rank input tuples per step (data-parallel trainer). */
std::vector<std::vector<Tensor>>
rankBatches(int64_t step)
{
    std::vector<std::vector<Tensor>> per_rank;
    for (int64_t r = 0; r < 2; ++r) {
        per_rank.push_back(
            {Tensor::randint({1, 8}, 64, 3000 + 10 * step + r),
             Tensor::randint({1, 8}, 64, 4000 + 10 * step + r)});
    }
    return per_rank;
}

/** All fault tests start and end with a disarmed failpoint registry. */
class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { fp::clearAll(); }
    void TearDown() override { fp::clearAll(); }
};

// --- failpoint framework ----------------------------------------------------

TEST_F(FaultTest, FailpointFiresAtExactInvocationAndRank)
{
    fp::Spec spec;
    spec.at = 2;
    spec.rank = 1;
    fp::enable("unit.site", spec);
    // Wrong rank: never fires.
    for (int i = 0; i < 5; ++i) {
        EXPECT_NO_THROW(fp::hit("unit.site", 0));
    }
    // Right rank: fires exactly at invocation 2.
    EXPECT_NO_THROW(fp::hit("unit.site", 1)); // invocation 0
    EXPECT_NO_THROW(fp::hit("unit.site", 1)); // invocation 1
    try {
        fp::hit("unit.site", 1); // invocation 2
        FAIL() << "failpoint did not fire";
    } catch (const fp::FailpointError& e) {
        EXPECT_EQ(e.site(), "unit.site");
        EXPECT_EQ(e.rank(), 1);
        EXPECT_EQ(e.invocation(), 2);
    }
    // One-shot: the next invocation passes.
    EXPECT_NO_THROW(fp::hit("unit.site", 1));
}

TEST_F(FaultTest, FailpointEnvSyntaxParses)
{
    EXPECT_EQ(fp::configureFromString("pg.allreduce@3:kill:r1;"
                                      "trainer.step@0:delay=5;"
                                      "elastic.rendezvous@2:die:r0"),
              3);
    fp::clearAll();
    EXPECT_THROW(fp::configureFromString("missing-at:throw"), SlapoError);
    EXPECT_THROW(fp::configureFromString("pg.allreduce@1"), SlapoError);
    EXPECT_THROW(fp::configureFromString("pg.allreduce@1:frobnicate"),
                 SlapoError);
    EXPECT_THROW(fp::configureFromString("pg.allreduce@x:throw"), SlapoError);
}

TEST_F(FaultTest, UnknownSiteInConfigStringFailsFast)
{
    // A typo'd site would arm a failpoint that can never fire — the
    // parser must reject anything outside knownSites() (programmatic
    // enable() stays permissive for ad-hoc unit sites).
    EXPECT_THROW(fp::configureFromString("pg.allredoce@0:throw"), SlapoError);
    EXPECT_THROW(fp::configureFromString("elastic.rebild@0:die"), SlapoError);
    EXPECT_NO_THROW(fp::enable("ad.hoc.unit.site", fp::Spec{}));
}

TEST_F(FaultTest, KnownSitesEnumerationMatchesDocumentedTable)
{
    // Keep the registry, the header docs, and docs/ROBUSTNESS.md in
    // sync: every site the runtime wires must be exactly this set. A new
    // failpoint::hit(...) site must be added here *and* to knownSites()
    // (and the docs), or configureFromString users could never arm it.
    const std::vector<std::string> documented = {
        "dp_trainer.step",     "elastic.drain",    "elastic.rebalance",
        "elastic.rebuild",     "elastic.rendezvous", "elastic.restore",
        "executor.rank",       "pg.allgather",     "pg.allreduce",
        "pg.allreduce.bucket", "pg.barrier",       "pg.broadcast",
        "pg.reducescatter",    "pipeline.stage",   "trainer.step",
    };
    EXPECT_EQ(fp::knownSites(), documented);
    ASSERT_TRUE(std::is_sorted(documented.begin(), documented.end()));
    for (const std::string& site : documented) {
        EXPECT_TRUE(fp::isKnownSite(site)) << site;
    }
    EXPECT_FALSE(fp::isKnownSite("pg.allredoce"));
    EXPECT_FALSE(fp::isKnownSite(""));
}

TEST_F(FaultTest, DelayActionStallsButSucceeds)
{
    fp::Spec spec;
    spec.at = 0;
    spec.action = fp::Action::Delay;
    spec.delay_ms = 30;
    fp::enable("unit.delay", spec);
    const auto start = std::chrono::steady_clock::now();
    EXPECT_NO_THROW(fp::hit("unit.delay", 0));
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                  .count(),
              25);
}

// --- collective hardening ---------------------------------------------------

TEST_F(FaultTest, RankKillDuringAllReduceSurfacesEverywhereNoDeadlock)
{
    // Acceptance (a): rank 2 dies mid-collective; every surviving rank
    // must get a typed CollectiveError well within the timeout instead
    // of hanging in the rendezvous forever.
    fp::Spec kill;
    kill.at = 0;
    kill.action = fp::Action::Kill;
    kill.rank = 2;
    fp::enable("pg.allreduce", kill);

    DistExecutor executor(3, ProcessGroupOptions{.timeout_ms = 30000});
    std::vector<ModulePtr> replicas;
    for (int r = 0; r < 3; ++r) {
        replicas.push_back(std::make_shared<nn::Sequential>());
    }
    std::vector<std::string> observed(3, "none");

    const auto start = std::chrono::steady_clock::now();
    try {
        executor.run(replicas,
                     [&](int rank, nn::Module&, ProcessGroup& group) {
                         try {
                             group.allReduce(rank, Tensor::full({2}, 1.0f));
                             observed[rank] = "ok";
                         } catch (const CollectiveError& e) {
                             observed[rank] = "collective";
                             EXPECT_EQ(e.rank(), 2); // origin is the dead rank
                             throw;
                         } catch (const fp::RankKilledError&) {
                             observed[rank] = "killed";
                             throw;
                         }
                     });
        FAIL() << "executor.run did not propagate the failure";
    } catch (const fp::RankKilledError& e) {
        EXPECT_EQ(e.rank(), 2); // the originating failure wins
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
              20);
    EXPECT_EQ(observed[0], "collective");
    EXPECT_EQ(observed[1], "collective");
    EXPECT_EQ(observed[2], "killed");

    // The group was reset: the executor is immediately reusable.
    fp::clearAll();
    std::vector<float> sums(3);
    executor.run(replicas, [&](int rank, nn::Module&, ProcessGroup& group) {
        sums[rank] =
            group.allReduce(rank, Tensor::full({1}, 1.0f + rank)).at(0);
    });
    for (int r = 0; r < 3; ++r) {
        EXPECT_FLOAT_EQ(sums[r], 6.0f);
    }
}

TEST_F(FaultTest, RendezvousTimesOutInsteadOfHangingForever)
{
    // One rank of a 2-rank group never shows up: the waiter must abort
    // with a typed CollectiveError after the configured timeout.
    ProcessGroup group(2, ProcessGroupOptions{.timeout_ms = 300});
    const auto start = std::chrono::steady_clock::now();
    try {
        group.allReduce(0, Tensor::full({2}, 1.0f));
        FAIL() << "lone rank did not time out";
    } catch (const CollectiveError& e) {
        EXPECT_EQ(e.site(), "pg.allreduce");
        EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos);
    }
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    EXPECT_GE(ms, 290);
    EXPECT_LT(ms, 10000);
}

TEST_F(FaultTest, MismatchedShapesRejectedNamingOffendingRank)
{
    // Satellite regression: depositing a tensor whose shape disagrees
    // with the group must raise a clear CollectiveError on every rank —
    // previously addInPlace would throw only on the last arrival's
    // thread and could leave peers blocked.
    ProcessGroup group(2, ProcessGroupOptions{.timeout_ms = 10000});
    std::vector<std::string> messages(2);
    std::vector<std::thread> threads;
    for (int r = 0; r < 2; ++r) {
        threads.emplace_back([&, r] {
            if (r == 1) {
                // Deposit second, with the wrong shape.
                std::this_thread::sleep_for(std::chrono::milliseconds(200));
            }
            try {
                group.allReduce(r, r == 0 ? Tensor::zeros({2, 2})
                                          : Tensor::zeros({3}));
            } catch (const CollectiveError& e) {
                messages[r] = e.what();
                EXPECT_EQ(e.rank(), 1);
            }
        });
    }
    for (auto& t : threads) t.join();
    for (int r = 0; r < 2; ++r) {
        EXPECT_NE(messages[r].find("rank 1"), std::string::npos)
            << "rank " << r << " saw: " << messages[r];
        EXPECT_NE(messages[r].find("[3]"), std::string::npos);
        EXPECT_NE(messages[r].find("[2, 2]"), std::string::npos);
    }

    // allGather legitimately accepts different extents along the concat
    // axis — only off-axis mismatches are errors.
    group.reset();
    std::vector<Tensor> gathered(2);
    std::vector<std::thread> ok;
    for (int r = 0; r < 2; ++r) {
        ok.emplace_back([&, r] {
            gathered[r] =
                group.allGather(r, Tensor::zeros({2, r == 0 ? 1 : 3}), 1);
        });
    }
    for (auto& t : ok) t.join();
    EXPECT_EQ(gathered[0].shape(), (Shape{2, 4}));
}

TEST_F(FaultTest, PipelineStageFailureDoesNotDeadlock)
{
    // Capacity-1 queues put the feeder under back-pressure; a stage that
    // dies mid-stream must abort the whole pipeline promptly.
    auto make_stage = [](uint64_t seed) {
        auto lin = std::make_shared<nn::Linear>(4, 4);
        lin->initializeParams(seed);
        return lin;
    };
    std::vector<ModulePtr> stages = {make_stage(1), make_stage(2)};
    PipelineRuntime pipeline(stages, /*queue_capacity=*/1);

    fp::Spec boom;
    boom.at = 1; // second micro-batch through stage 1
    boom.rank = 1;
    fp::enable("pipeline.stage", boom);

    std::vector<std::vector<Tensor>> micros;
    for (int m = 0; m < 8; ++m) {
        micros.push_back({Tensor::uniform({2, 4}, 1.0f, 50 + m)});
    }
    const auto start = std::chrono::steady_clock::now();
    EXPECT_THROW(pipeline.forward(micros), fp::FailpointError);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
              20);

    // Fresh queues per forward: the runtime recovers for the next call.
    fp::clearAll();
    auto result = pipeline.forward(micros);
    EXPECT_EQ(result.outputs.size(), micros.size());
}

// --- checkpoint format ------------------------------------------------------

TEST_F(FaultTest, CheckpointRoundTripsBitExactly)
{
    const std::string dir = scratchDir("roundtrip");
    CheckpointState state;
    state.step = 7;
    state.optimizer_steps = 7;
    state.tensors.push_back({"w", Tensor::uniform({3, 4}, 2.0f, 91)});
    state.tensors.push_back({"w.m", Tensor::randn({3, 4}, 0.1f, 92)});
    state.tensors.push_back({"w.v", Tensor::full({3, 4}, 1e-4f)});

    const std::string path = dir + "/" + checkpointFileName(state.step);
    saveCheckpoint(path, state);
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp")); // atomic rename

    CheckpointState loaded = loadCheckpoint(path);
    EXPECT_EQ(loaded.step, 7);
    EXPECT_EQ(loaded.optimizer_steps, 7);
    ASSERT_EQ(loaded.tensors.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(loaded.tensors[i].name, state.tensors[i].name);
        EXPECT_TRUE(
            bitwiseEqual(loaded.tensors[i].tensor, state.tensors[i].tensor));
    }

    auto listing = listCheckpoints(dir);
    ASSERT_EQ(listing.size(), 1u);
    EXPECT_EQ(listing[0].first, 7);
    EXPECT_THROW(loadCheckpoint(dir + "/absent.slpc"), CheckpointError);
    EXPECT_TRUE(listCheckpoints(dir + "/no-such-dir").empty());
}

TEST_F(FaultTest, CorruptCheckpointRejectedByCrc)
{
    const std::string dir = scratchDir("corrupt");
    CheckpointState state;
    state.tensors.push_back({"w", Tensor::uniform({8, 8}, 1.0f, 93)});
    const std::string path = dir + "/" + checkpointFileName(0);
    saveCheckpoint(path, state);

    // Flip one byte deep inside the tensor payload.
    {
        std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(-5, std::ios::end);
        char byte;
        f.seekg(-5, std::ios::end);
        f.get(byte);
        byte = static_cast<char>(byte ^ 0x40);
        f.seekp(-5, std::ios::end);
        f.put(byte);
    }
    try {
        loadCheckpoint(path);
        FAIL() << "corrupt checkpoint was accepted";
    } catch (const CheckpointError& e) {
        EXPECT_NE(std::string(e.what()).find("CRC mismatch"),
                  std::string::npos);
        EXPECT_EQ(e.path(), path);
    }
}

// --- recovery: crash, restore, replay, bit-exact ----------------------------

TEST_F(FaultTest, TrainerRecoversBitExactlyFromInjectedCrash)
{
    // Acceptance (b), single-process: crash at step 2 of 5, auto-restore
    // from the last checkpoint, and finish with parameters bitwise
    // identical to a run that never failed.
    const int64_t steps = 5;
    AdamWConfig config;
    config.lr = 5e-3f;

    // Uninterrupted reference (run while failpoints are disarmed).
    auto ref_model = buildLossModel(77);
    Trainer reference(ref_model, config);
    for (int64_t s = 0; s < steps; ++s) {
        reference.step(stepBatch(s));
    }

    RecoveryOptions recovery;
    recovery.checkpoint_every = 1;
    recovery.checkpoint_dir = scratchDir("trainer_recovery");
    recovery.max_retries = 2;
    auto model = buildLossModel(77);
    Trainer trainer(model, config, recovery);

    fp::Spec crash;
    crash.at = 2; // fires entering the third Trainer::step call
    fp::enable("trainer.step", crash);

    TrainRunStats stats = trainer.trainSteps(stepBatch, steps);
    EXPECT_EQ(stats.recoveries, 1);
    EXPECT_EQ(stats.steps_run, steps); // crashed step replayed once
    EXPECT_TRUE(paramsBitwiseEqual(*model, *ref_model));
}

TEST_F(FaultTest, TrainerWithoutRecoveryRethrows)
{
    auto model = buildLossModel(78);
    Trainer trainer(model); // no checkpoint_dir => recovery disabled
    fp::Spec crash;
    crash.at = 0;
    fp::enable("trainer.step", crash);
    EXPECT_THROW(trainer.trainSteps(stepBatch, 3), fp::FailpointError);
}

TEST_F(FaultTest, RetryBudgetExhaustionRethrows)
{
    // max_retries = 0: checkpoints are written but a single failure is
    // already over budget and must surface as the original error.
    RecoveryOptions recovery;
    recovery.checkpoint_every = 1;
    recovery.checkpoint_dir = scratchDir("budget");
    recovery.max_retries = 0;
    auto model = buildLossModel(79);
    Trainer trainer(model, AdamWConfig{}, recovery);
    fp::Spec crash;
    crash.at = 1; // step 0 succeeds, step 1 crashes
    fp::enable("trainer.step", crash);
    EXPECT_THROW(trainer.trainSteps(stepBatch, 3), fp::FailpointError);
}

TEST_F(FaultTest, DataParallelRankKillMidCollectiveRecoversBitExactly)
{
    // The headline: a DP rank is killed *inside* a gradient all-reduce
    // at step 2; the trainer joins the ranks, restores the step-2
    // checkpoint into every replica, replays, and the final parameters
    // are bitwise identical to a run that never failed.
    const int64_t steps = 4;
    AdamWConfig config;
    config.lr = 5e-3f;

    // Shrink the gradient-exchange buckets so one step spans several
    // flat buckets — the kill must land mid-step, between buckets.
    setenv("SLAPO_BUCKET_BYTES", "256", 1);

    auto ref_model = buildLossModel(88);
    DataParallelTrainer reference(*ref_model, 2, config);
    for (int64_t s = 0; s < steps; ++s) {
        reference.step(rankBatches(s));
    }

    RecoveryOptions recovery;
    recovery.checkpoint_every = 1;
    recovery.checkpoint_dir = scratchDir("dp_recovery");
    recovery.max_retries = 2;
    auto model = buildLossModel(88);
    DataParallelTrainer trainer(*model, 2, config, recovery);

    // Gradients travel as flat fixed-size buckets, one
    // "pg.allreduce.bucket" rendezvous each; kill rank 1 while it
    // exchanges the second bucket of step 2.
    int64_t grad_elems = 0;
    for (auto& [path, tensor] : model->namedParams()) {
        grad_elems += tensor->numel();
    }
    const int64_t bucket_elems = 256 / static_cast<int64_t>(sizeof(float));
    const int64_t buckets_per_step =
        (grad_elems + bucket_elems - 1) / bucket_elems;
    ASSERT_GE(buckets_per_step, 2)
        << "model too small to exercise a mid-step bucket kill";
    fp::Spec kill;
    kill.at = 2 * buckets_per_step + 1;
    kill.action = fp::Action::Kill;
    kill.rank = 1;
    fp::enable("pg.allreduce.bucket", kill);

    TrainRunStats stats = trainer.trainSteps(rankBatches, steps);
    unsetenv("SLAPO_BUCKET_BYTES");
    EXPECT_EQ(stats.recoveries, 1);
    for (int rank = 0; rank < 2; ++rank) {
        EXPECT_TRUE(
            paramsBitwiseEqual(trainer.replica(rank), reference.replica(rank)))
            << "rank " << rank;
    }
}

TEST_F(FaultTest, CorruptNewestCheckpointFallsBackToPrevious)
{
    // Acceptance (c): the newest checkpoint is corrupted on disk; the
    // recovery loop must reject it by CRC, restore the previous one, and
    // still converge to the uninterrupted trajectory.
    const int64_t steps = 3;
    AdamWConfig config;
    config.lr = 5e-3f;

    auto ref_model = buildLossModel(99);
    Trainer reference(ref_model, config);
    for (int64_t s = 0; s < steps; ++s) {
        reference.step(stepBatch(s));
    }

    RecoveryOptions recovery;
    recovery.checkpoint_every = 1;
    recovery.checkpoint_dir = scratchDir("corrupt_fallback");
    recovery.max_retries = 2;
    auto model = buildLossModel(99);
    Trainer trainer(model, config, recovery);

    // Train fully once: leaves ckpt-0..3 on disk (3 = final state).
    trainer.trainSteps(stepBatch, steps);
    EXPECT_TRUE(paramsBitwiseEqual(*model, *ref_model));

    // Corrupt the newest checkpoint (ckpt-3) and force a crash: the
    // loop must skip the corrupt file and restore ckpt-2.
    const std::string newest = recovery.checkpoint_dir + "/" +
                               checkpointFileName(steps);
    {
        std::fstream f(newest,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekg(-9, std::ios::end);
        char byte;
        f.get(byte);
        byte = static_cast<char>(byte ^ 0x08);
        f.seekp(-9, std::ios::end);
        f.put(byte);
    }
    EXPECT_THROW(loadCheckpoint(newest), CheckpointError);

    fp::Spec crash;
    crash.at = 0; // fail the first step of the re-run
    fp::enable("trainer.step", crash);
    TrainRunStats stats = trainer.trainSteps(stepBatch, steps);
    EXPECT_EQ(stats.recoveries, 1);
    // Restored from ckpt-2 (not the corrupt ckpt-3, whose payload bits
    // differ) and replayed step 2 => bitwise equal to the reference.
    EXPECT_TRUE(paramsBitwiseEqual(*model, *ref_model));
}

} // namespace
} // namespace runtime
} // namespace slapo
