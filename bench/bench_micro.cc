/**
 * @file
 * Micro-benchmarks (google-benchmark) of the framework itself: numeric
 * kernels, symbolic tracing, pattern matching, schedule application,
 * model cloning, and one full simulator evaluation — the costs a Slapo
 * user pays at schedule-construction time (the paper argues these are
 * negligible next to training).
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "baselines/baselines.h"
#include "models/registry.h"
#include "obs/mem_profiler.h"
#include "obs/profiler.h"
#include "nn/tracer.h"
#include "runtime/autograd.h"
#include "analysis/lint.h"
#include "core/auto_shard.h"
#include "core/pipeline.h"
#include "runtime/dist_executor.h"
#include "runtime/trainer.h"
#include "tensor/alloc.h"
#include "tensor/ops.h"

namespace {

using namespace slapo;

void
BM_TensorMatmul(benchmark::State& state)
{
    const int64_t n = state.range(0);
    Tensor a = Tensor::uniform({n, n}, 1.0f, 1);
    Tensor b = Tensor::uniform({n, n}, 1.0f, 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::matmul(a, b));
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_TensorMatmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void
BM_TensorMatmulThreads(benchmark::State& state)
{
    const int64_t n = state.range(0);
    slapo::bench::setKernelThreads(static_cast<int>(state.range(1)));
    Tensor a = Tensor::uniform({n, n}, 1.0f, 1);
    Tensor b = Tensor::uniform({n, n}, 1.0f, 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::matmul(a, b));
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
    slapo::bench::setKernelThreads(0);
}
BENCHMARK(BM_TensorMatmulThreads)
    ->ArgsProduct({{128, 256, 512}, {1, 2, 4}})
    ->ArgNames({"n", "threads"});

void
BM_TensorLayerNorm(benchmark::State& state)
{
    Tensor x = Tensor::uniform({64, 1024}, 1.0f, 3);
    Tensor gamma = Tensor::full({1024}, 1.0f);
    Tensor beta = Tensor::zeros({1024});
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::layerNorm(x, gamma, beta, 1e-5f));
    }
}
BENCHMARK(BM_TensorLayerNorm);

void
BM_TensorSoftmax(benchmark::State& state)
{
    Tensor x = Tensor::uniform({8, 16, 128, 128}, 1.0f, 5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::softmax(x));
    }
}
BENCHMARK(BM_TensorSoftmax);

void
BM_TensorLinearThreads(benchmark::State& state)
{
    slapo::bench::setKernelThreads(static_cast<int>(state.range(0)));
    Tensor x = Tensor::uniform({64, 1024}, 1.0f, 7);
    Tensor w = Tensor::uniform({1024, 1024}, 0.02f, 8);
    Tensor b = Tensor::zeros({1024});
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::linear(x, w, b));
    }
    state.SetItemsProcessed(state.iterations() * 2 * 64 * 1024 * 1024);
    slapo::bench::setKernelThreads(0);
}
BENCHMARK(BM_TensorLinearThreads)->Arg(1)->Arg(2)->Arg(4)->ArgName("threads");

void
BM_TraceFfnFlattened(benchmark::State& state)
{
    nn::FFN ffn(1024, 4096, 0.1);
    nn::TraceOptions options;
    options.flatten = true;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            nn::traceModule(ffn, {{1, 512, 1024}}, options));
    }
}
BENCHMARK(BM_TraceFfnFlattened);

void
BM_TraceBertLayerHierarchy(benchmark::State& state)
{
    models::TransformerConfig config = models::modelConfig("bert", 0);
    models::TransformerLayer layer(config);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            nn::traceModule(layer, {{1, 512, config.hidden}}));
    }
}
BENCHMARK(BM_TraceBertLayerHierarchy);

void
BM_PatternMatchFfn(benchmark::State& state)
{
    nn::FFN ffn(1024, 4096, 0.1);
    ffn.child("fc1")->meta().decomposed = true;
    nn::TraceOptions options;
    options.flatten = true;
    auto g = nn::traceModule(ffn, {{1, 512, 1024}}, options);
    const auto pattern = graph::Pattern::chain({"add", "gelu"});
    for (auto _ : state) {
        benchmark::DoNotOptimize(graph::findPattern(*g, pattern));
    }
}
BENCHMARK(BM_PatternMatchFfn);

void
BM_ScheduleFullBertRecipe(benchmark::State& state)
{
    // The whole §2.2 optimization flow on paper-scale BERT: fused QKV,
    // flash attention, bias+gelu fusion, checkpointing.
    for (auto _ : state) {
        auto sch = baselines::applyRecipe(
            models::buildModel("bert", 0),
            baselines::ScheduleRecipe::kernelOptimized(0.25));
        benchmark::DoNotOptimize(sch);
    }
}
BENCHMARK(BM_ScheduleFullBertRecipe)->Unit(benchmark::kMillisecond);

void
BM_LintScheduledTransformer(benchmark::State& state)
{
    // The static schedule lint (docs/VERIFICATION.md stage one) over an
    // auto-sharded tiny BERT with traced FFNs — the cost every gate and
    // every tuner trial admission pays.
    auto model = models::buildTinyModel("bert");
    auto sch = core::Schedule::create(model, 2);
    core::autoShard(*sch);
    nn::TraceOptions topts;
    topts.flatten = true;
    for (auto& [path, m] : model->namedModules()) {
        if (m->typeName() == "FFN") {
            (*sch)[path].trace({{2, 8, 16}}, topts);
        }
    }
    for (auto _ : state) {
        analysis::Diagnostics diags = analysis::lintModule(*model, 2);
        benchmark::DoNotOptimize(diags);
    }
}
BENCHMARK(BM_LintScheduledTransformer);

void
BM_CloneBert335M(benchmark::State& state)
{
    auto model = models::buildModel("bert", 0); // meta parameters
    for (auto _ : state) {
        benchmark::DoNotOptimize(model->clone());
    }
}
BENCHMARK(BM_CloneBert335M)->Unit(benchmark::kMillisecond);

void
BM_SimulatorStepBert(benchmark::State& state)
{
    sim::TrainingSimulator simulator(sim::ClusterSpec::singleV100(), 2.0);
    auto sch = baselines::applyRecipe(
        models::buildModel("bert", 0),
        baselines::ScheduleRecipe::kernelOptimized(0.25));
    auto shapes = baselines::modelShapeFn("bert", 0);
    sim::ParallelConfig config;
    config.micro_batch = 8;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            simulator.simulate(*sch->module(), shapes, config));
    }
    state.SetLabel("one cost-model evaluation of BERT-335M");
}
BENCHMARK(BM_SimulatorStepBert)->Unit(benchmark::kMillisecond);

void
BM_AutogradTinyBertStep(benchmark::State& state)
{
    auto model = runtime::withCrossEntropyLoss(models::buildTinyModel("bert"));
    model->initializeParams(7);
    Tensor ids = Tensor::randint({2, 8}, 64, 1);
    Tensor targets = Tensor::randint({2, 8}, 64, 2);
    for (auto _ : state) {
        runtime::AutogradEngine engine;
        benchmark::DoNotOptimize(engine.run(*model, {ids, targets}));
    }
    state.SetLabel("numeric fwd+bwd of the tiny test model");
}
BENCHMARK(BM_AutogradTinyBertStep)->Unit(benchmark::kMillisecond);

void
BM_VerifierShardedFfn(benchmark::State& state)
{
    // One end-to-end verification of a 2-way sharded linear pair: the
    // cost of the paper's §3.5 numeric check at test scale.
    auto seq = std::make_shared<nn::Sequential>();
    seq->append(std::make_shared<nn::Linear>(32, 64));
    seq->append(std::make_shared<nn::Linear>(64, 32));
    seq->initializeParams(3);
    nn::ShardSpec col;
    col.axis = 0;
    col.world_size = 2;
    seq->child("0")->meta().sharded_params["weight"] = col;
    seq->child("0")->meta().sharded_params["bias"] = col;
    nn::ShardSpec row;
    row.axis = 1;
    row.world_size = 2;
    seq->child("1")->meta().sharded_params["weight"] = row;
    nn::SyncSpec sync;
    seq->child("1")->meta().syncs.push_back(sync);

    Tensor x = Tensor::uniform({4, 32}, 1.0f, 9);
    for (auto _ : state) {
        runtime::DistExecutor executor(2);
        benchmark::DoNotOptimize(executor.forward(*seq, {x}));
    }
}
BENCHMARK(BM_VerifierShardedFfn)->Unit(benchmark::kMillisecond);

void
BM_AutoShardBert335M(benchmark::State& state)
{
    // Automatic shard/sync generation for the full paper-scale model.
    for (auto _ : state) {
        auto sch =
            core::Schedule::create(models::buildModel("bert", 0), 8);
        core::autoShard(*sch);
        benchmark::DoNotOptimize(sch);
    }
}
BENCHMARK(BM_AutoShardBert335M)->Unit(benchmark::kMillisecond);

void
BM_PipelinePartitionBert(benchmark::State& state)
{
    for (auto _ : state) {
        auto model = models::buildModel("bert", 0);
        auto sch = core::Schedule::create(model, 2);
        (*sch)["encoder.layer.11"].pipelineSplit();
        benchmark::DoNotOptimize(core::partitionPipeline(*sch, {{1, 512}}));
    }
}
BENCHMARK(BM_PipelinePartitionBert)->Unit(benchmark::kMillisecond);

void
BM_TrainerStepTinyBert(benchmark::State& state)
{
    auto model = runtime::withCrossEntropyLoss(models::buildTinyModel("bert"));
    model->initializeParams(11);
    runtime::Trainer trainer(model);
    std::vector<std::vector<Tensor>> micros = {
        {Tensor::randint({2, 8}, 64, 1), Tensor::randint({2, 8}, 64, 2)}};
    for (auto _ : state) {
        benchmark::DoNotOptimize(trainer.step(micros));
    }
    state.SetLabel("fwd+bwd+AdamW on the tiny test model");
}
BENCHMARK(BM_TrainerStepTinyBert)->Unit(benchmark::kMillisecond);

void
BM_AllocStep(benchmark::State& state)
{
    // The A/B the caching allocator is judged by: one full training step
    // (fwd+bwd+AdamW) with the size-class pool on (pool=1) vs plain heap
    // alloc/free (pool=0). A warm-up step outside the timed loop fills
    // the free lists, so in pool mode the timed steps perform zero
    // tensor-storage heap allocations (tests/test_alloc.cc asserts the
    // counter; this measures what that buys).
    const bool pool = state.range(0) != 0;
    alloc::setMode(pool ? alloc::Mode::Pool : alloc::Mode::Malloc);
    auto model = runtime::withCrossEntropyLoss(models::buildTinyModel("bert"));
    model->initializeParams(11);
    runtime::Trainer trainer(model);
    std::vector<std::vector<Tensor>> micros = {
        {Tensor::randint({4, 16}, 64, 1), Tensor::randint({4, 16}, 64, 2)}};
    trainer.step(micros);
    for (auto _ : state) {
        benchmark::DoNotOptimize(trainer.step(micros));
    }
    state.SetLabel(pool ? "SLAPO_ALLOC=pool" : "SLAPO_ALLOC=malloc");
    alloc::setMode(alloc::Mode::Pool);
    alloc::clearPool();
}
BENCHMARK(BM_AllocStep)->Arg(0)->Arg(1)->ArgName("pool")
    ->Unit(benchmark::kMillisecond);

void
BM_AllocAcquireRelease(benchmark::State& state)
{
    // Raw allocator hot path: acquire/release round-trips of a 1 MiB
    // buffer, free-list hit vs heap round-trip.
    const bool pool = state.range(0) != 0;
    alloc::setMode(pool ? alloc::Mode::Pool : alloc::Mode::Malloc);
    const int64_t numel = 256 * 1024;
    // Touch one float per 4 KiB page, as every kernel writing its output
    // would: a heap round-trip of an mmap-sized buffer re-faults freshly
    // zeroed pages each iteration, a pooled buffer keeps its pages warm.
    constexpr int64_t kFloatsPerPage = 4096 / sizeof(float);
    for (auto _ : state) {
        int64_t cap = 0;
        float* p = alloc::acquire(numel, &cap);
        for (int64_t i = 0; i < numel; i += kFloatsPerPage) {
            p[i] = static_cast<float>(i);
        }
        benchmark::DoNotOptimize(p);
        alloc::release(p, cap);
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(pool ? "pool" : "malloc");
    alloc::setMode(alloc::Mode::Pool);
    alloc::clearPool();
}
BENCHMARK(BM_AllocAcquireRelease)->Arg(0)->Arg(1)->ArgName("pool");

void
BM_ProfilerDisabledCheck(benchmark::State& state)
{
    // The per-node cost of attribution when no profiler is installed:
    // one relaxed atomic load (docs/OBSERVABILITY.md, "Overhead").
    for (auto _ : state) {
        benchmark::DoNotOptimize(obs::OpProfiler::current());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerDisabledCheck);

void
BM_ProfilerRecord(benchmark::State& state)
{
    // The per-node cost with a profiler installed: clock reads happen in
    // the interpreter's timers; this measures the record() fold itself
    // (map lookup + histogram bump under the profiler mutex).
    obs::OpProfiler profiler;
    const std::string op = "linear";
    const std::string path = "encoder.layer.0.ffn.fc1";
    const std::string primitive = "shard";
    int64_t ns = 0;
    for (auto _ : state) {
        profiler.record(op, path, primitive, ++ns);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerRecord);

void
BM_MemProfilerDisabledCheck(benchmark::State& state)
{
    // The per-allocation cost of memory attribution when the profiler
    // is off: one relaxed atomic load in memProfilingEnabled() — the
    // only thing TensorStorage's ctor/dtor pay (obs/mem_profiler.h).
    obs::setMemProfilingEnabled(false);
    for (auto _ : state) {
        benchmark::DoNotOptimize(obs::memProfilingEnabled());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemProfilerDisabledCheck);

void
BM_MemProfilerRecord(benchmark::State& state)
{
    // The enabled-path cost: one registry insert + erase per
    // allocate/free pair (mutex, hash map, category counters, watermark
    // check). Uses a synthetic key so no real tensor traffic mixes in.
    obs::setMemProfilingEnabled(true);
    obs::memProfilerReset();
    int64_t key = 0;
    for (auto _ : state) {
        const void* k = reinterpret_cast<const void*>(++key);
        obs::memRecordAlloc(k, 4096);
        obs::memRecordFree(k);
    }
    state.SetItemsProcessed(state.iterations());
    obs::setMemProfilingEnabled(false);
    obs::memProfilerReset();
}
BENCHMARK(BM_MemProfilerRecord);

} // namespace

BENCHMARK_MAIN();
