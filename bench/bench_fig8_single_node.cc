/**
 * @file
 * Fig. 8 reproduction: training throughput on one p3.16xlarge node with
 * 2/4/8 V100 16GB GPUs — Megatron-LM vs DeepSpeed ZeRO-3 vs Slapo-TP vs
 * Slapo-ZeRO3 on all seven Table 2 models.
 *
 * Paper shape: Megatron only supports BERT/GPT/T5 ("x" elsewhere);
 * neither baseline dominates the other everywhere; Slapo-TP lands at
 * 87-103% of Megatron on its models; Slapo-ZeRO3 beats DeepSpeed by
 * 1.08x - 3.35x.
 */
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "models/registry.h"

int
main()
{
    using namespace slapo;
    using baselines::BenchResult;

    double z3_min = 1e9;
    double z3_max = 0;
    double tp_min = 1e9;
    double tp_max = 0;

    for (int gpus : {2, 4, 8}) {
        sim::ClusterSpec cluster = sim::ClusterSpec::p3_16xlarge();
        cluster.gpus_per_node = gpus; // 2/4/8-GPU slices of the node

        char title[128];
        std::snprintf(title, sizeof(title),
                      "Fig. 8: single-node throughput on %d x V100 16GB "
                      "(samples/s, simulated)",
                      gpus);
        bench::printHeader(title);
        std::printf("%-12s %8s %8s %8s %8s | %10s %10s\n", "Model",
                    "Megatron", "DeepSpd", "Slapo-TP", "Slapo-Z3", "TP/Meg",
                    "Z3/DS");

        for (const auto& info : models::table2()) {
            if (info.name == "wideresnet" && gpus > 1) {
                // The paper trains WRN with data parallelism only; keep
                // the DeepSpeed-family columns and mark TP "x".
            }
            baselines::RunOptions tp_options;
            tp_options.tp = gpus;
            baselines::RunOptions dp_options;
            dp_options.dp = gpus;

            BenchResult megatron =
                baselines::runMegatron(info.name, 0, cluster, tp_options);
            BenchResult deepspeed =
                baselines::runDeepSpeed(info.name, 0, cluster, dp_options);
            BenchResult slapo_tp =
                info.name == "wideresnet"
                    ? BenchResult{"Slapo-TP", false,
                                  "no tensor-parallel dims in conv blocks",
                                  0.0, {}}
                    : baselines::runSlapoTP(info.name, 0, cluster, tp_options);
            BenchResult slapo_z3 =
                baselines::runSlapoZeRO3(info.name, 0, cluster, dp_options);

            const double tp_vs_meg = bench::ratio(slapo_tp, megatron);
            const double z3_vs_ds = bench::ratio(slapo_z3, deepspeed);
            std::printf("%-12s %s %s %s %s |", info.name.c_str(),
                        bench::cell(megatron).c_str(),
                        bench::cell(deepspeed).c_str(),
                        bench::cell(slapo_tp).c_str(),
                        bench::cell(slapo_z3).c_str());
            if (tp_vs_meg > 0) {
                std::printf(" %9.0f%%", tp_vs_meg * 100.0);
                tp_min = std::min(tp_min, tp_vs_meg);
                tp_max = std::max(tp_max, tp_vs_meg);
            } else {
                std::printf(" %10s", "-");
            }
            if (z3_vs_ds > 0) {
                std::printf(" %9.2fx\n", z3_vs_ds);
                z3_min = std::min(z3_min, z3_vs_ds);
                z3_max = std::max(z3_max, z3_vs_ds);
            } else {
                std::printf(" %10s\n", "-");
            }
        }
    }

    std::printf("\nSlapo-TP vs Megatron range: %.0f%% - %.0f%% "
                "(paper: 87%% - 103%% on 8 GPUs)\n",
                tp_min * 100.0, tp_max * 100.0);
    std::printf("Slapo-ZeRO3 vs DeepSpeed range: %.2fx - %.2fx "
                "(paper: 1.08x - 3.35x)\n",
                z3_min, z3_max);
    return 0;
}
