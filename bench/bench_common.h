/**
 * @file
 * Shared formatting helpers for the figure/table reproduction harnesses.
 * Every bench binary prints the same rows/series the paper reports, plus
 * the ratios the text calls out, so EXPERIMENTS.md can be filled by
 * running every binary under build/bench/.
 */
#pragma once

#include <cstdio>
#include <string>

#include "baselines/baselines.h"
#include "support/parallel.h"

namespace slapo {
namespace bench {

/**
 * Pin the kernel thread pool for a benchmark section; pass 0 to restore
 * the SLAPO_NUM_THREADS / hardware default. Kernel results are
 * bit-identical at any setting, so this only moves throughput.
 */
inline void
setKernelThreads(int n)
{
    slapo::setNumThreads(n);
}

/** Render a throughput cell; unsupported systems print "x" (as in the
 * paper's figures) and OOM prints "OOM". */
inline std::string
cell(const baselines::BenchResult& result)
{
    if (!result.supported) {
        return "      x";
    }
    if (result.stats.oom) {
        return "    OOM";
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%7.1f", result.stats.throughput);
    return buffer;
}

inline void
printHeader(const char* title)
{
    std::printf("\n=====================================================================\n");
    std::printf("%s\n", title);
    std::printf("=====================================================================\n");
}

inline double
ratio(const baselines::BenchResult& a, const baselines::BenchResult& b)
{
    if (!a.supported || !b.supported || a.stats.oom || b.stats.oom ||
        b.stats.throughput <= 0) {
        return 0;
    }
    return a.stats.throughput / b.stats.throughput;
}

} // namespace bench
} // namespace slapo
