/**
 * @file
 * Table 2 reproduction: the evaluated models with their parameter
 * counts, sequence lengths / image sizes, and precisions. Prints the
 * paper's number next to the parameter count of the model we actually
 * built (our LM heads are untied, so decoder models carry an extra
 * vocab x hidden block; see DESIGN.md).
 */
#include <cstdio>

#include "bench_common.h"
#include "models/registry.h"

int
main()
{
    using namespace slapo;
    bench::printHeader(
        "Table 2: Models used in the experiments (paper vs this repo)");
    std::printf("%-12s %-8s %16s %18s %12s %10s\n", "Model", "Task",
                "paper params(M)", "built params(M)", "SeqLen/Img",
                "Precision");

    for (const auto& info : models::table2()) {
        double built[2] = {0, 0};
        const int variants =
            info.paper_params_m[0] == info.paper_params_m[1] ? 1 : 2;
        for (int v = 0; v < variants; ++v) {
            built[v] =
                static_cast<double>(models::buildModel(info.name, v)->numParams()) /
                1e6;
        }
        char paper_col[32];
        char built_col[32];
        if (variants == 1) {
            std::snprintf(paper_col, sizeof(paper_col), "%.0f",
                          info.paper_params_m[0]);
            std::snprintf(built_col, sizeof(built_col), "%.0f", built[0]);
        } else {
            std::snprintf(paper_col, sizeof(paper_col), "%.0f, %.0f",
                          info.paper_params_m[0], info.paper_params_m[1]);
            std::snprintf(built_col, sizeof(built_col), "%.0f, %.0f", built[0],
                          built[1]);
        }
        std::printf("%-12s %-8s %16s %18s %12lld %10s\n", info.name.c_str(),
                    info.task.c_str(), paper_col, built_col,
                    static_cast<long long>(info.seq_len),
                    info.precision.c_str());
    }

    const double gpt10b =
        static_cast<double>(models::buildGpt10B()->numParams()) / 1e9;
    std::printf("\nFig. 9 model: GPT %.2fB parameters (paper: 10B)\n", gpt10b);
    return 0;
}
