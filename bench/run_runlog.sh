#!/usr/bin/env bash
# Run-log smoke test: run a 4-rank data-parallel training loop
# (examples/distributed_telemetry) and validate the emitted run.jsonl
# against the schema documented in docs/OBSERVABILITY.md — every line is
# a JSON object carrying "kind", the step records have the full field
# set with sane values, the checkpoint cadence shows up, and the final
# dist_metrics record aggregates all four ranks. Registered as the
# `runlog_smoke` ctest.
#
# Usage: bench/run_runlog.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
example_bin="$build_dir/examples/distributed_telemetry"

if [[ ! -x "$example_bin" ]]; then
    echo "error: $example_bin not built; run:" >&2
    echo "  cmake -B \"$build_dir\" -S \"$repo_root\" && cmake --build \"$build_dir\" -j" >&2
    exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

(cd "$workdir" && "$example_bin")

runlog="$workdir/run.jsonl"
if [[ ! -s "$runlog" ]]; then
    echo "error: $runlog missing or empty" >&2
    exit 1
fi

python3 - "$runlog" <<'PY'
import json, math, sys

WORLD_SIZE = 4
STEPS = 4

records = []
with open(sys.argv[1]) as f:
    for i, line in enumerate(f, 1):
        rec = json.loads(line)  # every line must parse on its own
        assert isinstance(rec, dict) and "kind" in rec, f"line {i}: no kind"
        assert rec.get("schema_version") == 2, \
            f"line {i} ({rec['kind']}): missing schema_version"
        records.append(rec)

by_kind = {}
for rec in records:
    by_kind.setdefault(rec["kind"], []).append(rec)

# step records: one per optimizer step, full documented field set.
steps = by_kind.get("step", [])
assert len(steps) == STEPS, f"expected {STEPS} step records, got {len(steps)}"
step_fields = {"step", "loss", "grad_norm", "micro_batches", "tokens",
               "tokens_per_s", "step_ms", "mem_peak_bytes",
               "mem_live_bytes", "mem_retained_bytes", "world_size",
               "anomaly_nan", "anomaly_loss_spike"}
for want, rec in enumerate(steps):
    missing = step_fields - rec.keys()
    assert not missing, f"step record missing fields: {sorted(missing)}"
    assert rec["step"] == want, f"step index {rec['step']} != {want}"
    assert rec["world_size"] == WORLD_SIZE
    assert math.isfinite(rec["loss"]) and rec["loss"] > 0
    assert math.isfinite(rec["grad_norm"]) and rec["grad_norm"] > 0
    assert rec["tokens"] > 0 and rec["step_ms"] > 0
    assert rec["mem_peak_bytes"] > 0
    assert rec["anomaly_nan"] is False, "healthy run flagged NaN"

# checkpoint cadence: checkpoint_every=2 over 4 steps saves at 0, 2,
# plus the final state.
saves = by_kind.get("checkpoint.save", [])
assert len(saves) >= 2, f"expected >=2 checkpoint.save records, got {len(saves)}"
for rec in saves:
    assert rec["bytes"] > 0 and rec["write_ms"] >= 0 and rec["path"]

# dist_metrics: rank 0's merged view with per-rank rows for all ranks.
dist = by_kind.get("dist_metrics", [])
assert len(dist) == 1, f"expected 1 dist_metrics record, got {len(dist)}"
metrics = dist[0]["metrics"]
assert dist[0]["world_size"] == WORLD_SIZE
for name in ("pg.count", "pg.wait_ns", "pg.copy_ns",
             "tensor.allocated_bytes", "tensor.peak_bytes"):
    stat = metrics[name]
    assert len(stat["per_rank"]) == WORLD_SIZE, f"{name}: wrong rank count"
    assert stat["min"] == min(stat["per_rank"]), name
    assert stat["max"] == max(stat["per_rank"]), name
    assert stat["spread"] == stat["max"] - stat["min"], name
# Every rank ran the same collective schedule.
assert metrics["pg.count"]["spread"] == 0, "pg.count skew in lockstep run"
assert metrics["pg.count"]["min"] > 0, "no collectives recorded"

print(f"run log OK: {len(records)} records "
      f"({', '.join(f'{k}x{len(v)}' for k, v in sorted(by_kind.items()))})")
PY

echo "run log smoke test passed"
