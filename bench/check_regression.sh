#!/usr/bin/env bash
# Perf-regression gate: compare a fresh BENCH_kernels.json against the
# committed baseline and fail when any shared benchmark slowed down by
# more than the threshold (docs/PERFORMANCE.md, "Regression gate").
#
# Usage:
#   bench/check_regression.sh [build-dir] [--current=FILE] [--baseline=FILE]
#                             [--filter=REGEX]
#
#   build-dir        where bench_micro lives (default: build)
#   --current=FILE   pre-recorded result file; when absent the script runs
#                    bench_micro itself (with --filter when given)
#   --baseline=FILE  baseline to compare against (default: the committed
#                    BENCH_kernels.json at the repo root)
#   --filter=REGEX   google-benchmark filter for the fresh run; only the
#                    intersection of benchmark names is compared, so a
#                    narrow filter makes a fast smoke gate
#
# Environment:
#   SLAPO_REGRESSION_PCT     slowdown percent that fails the gate (default 20)
#   SLAPO_REGRESSION_MIN_NS  baseline times under this floor are never
#                            flagged — they are timing noise (default 100000)
#
# Exit codes: 0 = no regression, 1 = regression, 77 = skipped (no
# baseline / no benchmark binary / no python3), 2 = usage error.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
current=""
baseline="$repo_root/BENCH_kernels.json"
filter='BM_Tensor(Matmul|MatmulThreads|LinearThreads|LayerNorm|Softmax)|BM_Alloc(Step|AcquireRelease)'

for arg in "$@"; do
    case "$arg" in
      --current=*) current="${arg#--current=}" ;;
      --baseline=*) baseline="${arg#--baseline=}" ;;
      --filter=*) filter="${arg#--filter=}" ;;
      --*) echo "error: unknown option $arg" >&2; exit 2 ;;
      *) build_dir="$arg" ;;
    esac
done

if ! command -v python3 >/dev/null 2>&1; then
    echo "skip: python3 not available" >&2
    exit 77
fi
if [[ ! -f "$baseline" ]]; then
    echo "skip: no baseline at $baseline" >&2
    exit 77
fi

cleanup=""
if [[ -z "$current" ]]; then
    bench_bin="$build_dir/bench/bench_micro"
    if [[ ! -x "$bench_bin" ]]; then
        echo "skip: $bench_bin not built" >&2
        exit 77
    fi
    current="$(mktemp /tmp/slapo_bench_current.XXXXXX.json)"
    cleanup="$current"
    "$bench_bin" \
        --benchmark_filter="$filter" \
        --benchmark_format=json \
        --benchmark_out="$current" \
        --benchmark_out_format=json >&2
fi
if [[ ! -f "$current" ]]; then
    echo "error: no current result file at $current" >&2
    exit 2
fi

threshold="${SLAPO_REGRESSION_PCT:-20}"
min_ns="${SLAPO_REGRESSION_MIN_NS:-100000}"

status=0
python3 - "$baseline" "$current" "$threshold" "$min_ns" <<'PY' || status=$?
import json
import sys

baseline_path, current_path, threshold, min_ns = sys.argv[1:5]
threshold = float(threshold)
min_ns = float(min_ns)

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        ns = float(b["real_time"]) * UNIT_NS[b.get("time_unit", "ns")]
        out[b["name"]] = ns
    return out

base = load(baseline_path)
cur = load(current_path)
shared = sorted(set(base) & set(cur))
if not shared:
    print("error: no shared benchmarks between baseline and current",
          file=sys.stderr)
    sys.exit(2)

regressions = []
print(f"{'benchmark':44s} {'baseline':>14s} {'current':>14s} {'delta':>8s}")
for name in shared:
    b, c = base[name], cur[name]
    pct = (c - b) / b * 100.0 if b > 0 else 0.0
    flag = ""
    if pct > threshold and b >= min_ns:
        flag = "  REGRESSION"
        regressions.append((name, pct))
    print(f"{name:44s} {b:12.0f}ns {c:12.0f}ns {pct:+7.1f}%{flag}")

skipped = len(set(base) - set(cur))
if skipped:
    print(f"note: {skipped} baseline benchmark(s) not in current run "
          f"(filtered out)")
if regressions:
    print(f"\nFAIL: {len(regressions)} regression(s) over "
          f"{threshold:.0f}% (floor {min_ns:.0f}ns):", file=sys.stderr)
    for name, pct in regressions:
        print(f"  {name}: {pct:+.1f}%", file=sys.stderr)
    sys.exit(1)
print(f"\nOK: {len(shared)} benchmark(s) within {threshold:.0f}% "
      f"of baseline")
PY

[[ -n "$cleanup" ]] && rm -f "$cleanup"
exit $status
