#!/usr/bin/env bash
# Static-lint smoke test: run the lint walkthrough example
# (examples/lint_schedule) with SLAPO_LINT pointed at a JSON report file
# and validate both sides of the contract — the deliberately broken
# schedule is rejected with the documented stable codes (SLP202 stale
# shard spec, SLP231 missing sync, SLP301 too many pipeline stages), and
# the fixed schedule's gate appends a schema-conformant passing report.
# Registered as the `lint_smoke` ctest.
#
# Usage: bench/run_lint.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
example_bin="$build_dir/examples/lint_schedule"

if [[ ! -x "$example_bin" ]]; then
    echo "error: $example_bin not built; run:" >&2
    echo "  cmake -B \"$build_dir\" -S \"$repo_root\" && cmake --build \"$build_dir\" -j" >&2
    exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

report="$workdir/lint.jsonl"
stdout="$workdir/stdout.txt"
(cd "$workdir" && SLAPO_LINT="$report" "$example_bin" | tee "$stdout")

# The walkthrough must reach both outcomes: the rejected broken schedule
# and the accepted fixed one.
grep -q "gate 'executor.replicate' rejected the schedule" "$stdout"
grep -q "fixed schedule passed the gate (0 errors" "$stdout"

if [[ ! -s "$report" ]]; then
    echo "error: SLAPO_LINT report $report missing or empty" >&2
    exit 1
fi

python3 - "$report" <<'PY'
import json, sys

reports = []
with open(sys.argv[1]) as f:
    for i, line in enumerate(f, 1):
        rec = json.loads(line)  # every line must parse on its own
        assert isinstance(rec, dict), f"line {i}: not an object"
        assert rec.get("kind") == "lint", f"line {i}: kind != lint"
        assert rec.get("schema_version") == 2, f"line {i}: no schema_version"
        for field in ("errors", "warnings", "notes", "diagnostics"):
            assert field in rec, f"line {i}: missing {field}"
        assert rec["errors"] == sum(
            1 for d in rec["diagnostics"] if d["severity"] == "error"
        ), f"line {i}: errors count disagrees with diagnostics"
        for d in rec["diagnostics"]:
            assert d["code"].startswith("SLP") and len(d["code"]) == 6, \
                f"line {i}: malformed code {d['code']!r}"
            assert d["severity"] in ("error", "warning", "note")
            assert d["message"], f"line {i}: empty message"
        reports.append(rec)

# One failing report (the broken schedule, written by the replicate gate
# before it threw) and one passing report (the fixed schedule).
failing = [r for r in reports if r["errors"] > 0]
passing = [r for r in reports if r["errors"] == 0]
assert failing, "no failing lint report was emitted"
assert passing, "no passing lint report was emitted"

codes = {d["code"] for r in failing for d in r["diagnostics"]
         if d["severity"] == "error"}
for want in ("SLP202", "SLP231", "SLP301"):
    assert want in codes, f"expected {want} in failing report, got {codes}"

# Stable locations: the missing sync names the row-parallel fc2 by its
# dotted schedule path.
paths = {d["module"] for r in failing for d in r["diagnostics"]}
assert "encoder.layer.0.ffn.fc2" in paths, paths

print(f"lint report OK: {len(reports)} reports "
      f"({len(failing)} failing, {len(passing)} passing), "
      f"codes {sorted(codes)}")
PY

echo "lint smoke test passed"
