#!/usr/bin/env bash
# Trace smoke test: run a short traced + profiled training loop
# (examples/profiled_training) and verify the emitted trace.json is
# valid Chrome-trace JSON. Registered as the `trace_smoke` ctest.
#
# Usage: bench/run_trace.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
example_bin="$build_dir/examples/profiled_training"

if [[ ! -x "$example_bin" ]]; then
    echo "error: $example_bin not built; run:" >&2
    echo "  cmake -B \"$build_dir\" -S \"$repo_root\" && cmake --build \"$build_dir\" -j" >&2
    exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

(cd "$workdir" && "$example_bin")

trace="$workdir/trace.json"
if [[ ! -s "$trace" ]]; then
    echo "error: $trace missing or empty" >&2
    exit 1
fi

# Well-formed JSON per the standard library parser, and structurally a
# Chrome trace: a traceEvents array with at least one complete span.
python3 -m json.tool "$trace" > /dev/null
python3 - "$trace" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert isinstance(events, list) and events, "no traceEvents"
phases = {e.get("ph") for e in events}
assert "X" in phases, f"no complete spans, phases seen: {phases}"
assert "M" in phases, f"no metadata rows, phases seen: {phases}"
names = {e.get("name") for e in events}
assert "trainer.step" in names, "trainer.step span missing"
print(f"trace OK: {len(events)} events, phases {sorted(p for p in phases if p)}")
PY

echo "trace smoke test passed"
