#!/usr/bin/env bash
# Build the tree under UndefinedBehaviorSanitizer and run the graph /
# schedule / allocator / static-analysis tests. The graph IR and the
# static lint lean on exactly the constructs UBSan polices and the
# regular build cannot: int64 extent arithmetic (shard divisibility,
# interleave group math, liveness intervals) that must not wrap, enum
# casts between NodeKind/Op and their storage, and pointer alignment on
# the pool-recycled raw buffers the planner rewrites in place. Any
# change to src/graph/, src/analysis/, core/schedule.cc, or
# tensor/alloc.* should pass through here.
#
# Registered as the `ubsan_core` ctest (bench/CMakeLists.txt) scoped to
# the graph/schedule/alloc/analysis tests so tier-1 stays fast; run it
# manually with no filter for whole-suite UBSan coverage:
#
# Usage: bench/run_ubsan.sh [extra ctest args, e.g. -R Sharding]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-ubsan"

gen=()
command -v ninja >/dev/null 2>&1 && gen=(-G Ninja)
cmake -B "${BUILD}" -S "${ROOT}" "${gen[@]}" \
    -DSLAPO_SANITIZE=undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD}" -j

# The build already passes -fno-sanitize-recover=all, so any report
# aborts the offending test; print_stacktrace makes the one-line UBSan
# diagnostics actionable without a rerun under a debugger.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1 halt_on_error=1}"

ctest --test-dir "${BUILD}" --output-on-failure -j "$(nproc)" "$@"
