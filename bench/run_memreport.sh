#!/usr/bin/env bash
# Memory-forensics smoke test: run the memory-profiling walkthrough
# (examples/memory_profiling) with a deliberately low SLAPO_MEM_BUDGET
# and validate the observability outputs — the SLAPO_MEM_DUMP forensics
# file is a valid mem_peak_report with >= 90% of the peak attributed,
# the run log carries mem.budget crossings with embedded forensics,
# step records carry the memory fields, and every tuner.trial records
# its measured peak (docs/OBSERVABILITY.md, "Where did my memory go?").
# Registered as the `memreport_smoke` ctest.
#
# Usage: bench/run_memreport.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$(cd "${1:-$repo_root/build}" && pwd)"
example_bin="$build_dir/examples/memory_profiling"

if [[ ! -x "$example_bin" ]]; then
    echo "error: $example_bin not built; run:" >&2
    echo "  cmake -B \"$build_dir\" -S \"$repo_root\" && cmake --build \"$build_dir\" -j" >&2
    exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# Low enough that a tiny-bert training step crosses it, high enough
# that model construction does not.
export SLAPO_MEM_BUDGET=200000
export SLAPO_MEM_BUDGET_ACTION=warn
export SLAPO_MEM_DUMP="$workdir/mem_dump.json"
export SLAPO_RUN_LOG="$workdir/run.jsonl"

(cd "$workdir" && "$example_bin")

if [[ ! -s "$workdir/mem_dump.json" ]]; then
    echo "error: $workdir/mem_dump.json missing or empty" >&2
    exit 1
fi

python3 - "$workdir/mem_dump.json" "$workdir/run.jsonl" <<'PY'
import json, sys

BUDGET = 200000

# The forensics dump: a self-contained peak-attribution report.
with open(sys.argv[1]) as f:
    dump = json.load(f)
assert dump["kind"] == "mem_peak_report", dump.get("kind")
assert dump["peak_bytes"] > 0
assert dump["attributed_fraction"] >= 0.9, \
    f"only {dump['attributed_fraction']:.1%} of the peak attributed"
assert set(dump["categories"]) == {"parameter", "gradient", "activation",
                                   "optimizer_state", "scratch",
                                   "comm_buffer"}
assert dump["rows"], "no attribution rows"
for row in dump["rows"]:
    assert row["bytes"] > 0 and row["category"] and row["primitive"], row
assert dump["top_tensors"], "no top-tensor list"

records = []
with open(sys.argv[2]) as f:
    for i, line in enumerate(f, 1):
        rec = json.loads(line)  # every line must parse on its own
        assert isinstance(rec, dict) and "kind" in rec, f"line {i}: no kind"
        records.append(rec)
by_kind = {}
for rec in records:
    by_kind.setdefault(rec["kind"], []).append(rec)

# Budget crossings: the watchdog fired and embedded forensics.
crossings = by_kind.get("mem.budget", [])
assert crossings, "no mem.budget record despite the low budget"
for rec in crossings:
    assert rec["budget_bytes"] == BUDGET
    assert rec["live_bytes"] > BUDGET
    assert rec["action"] == "warn"
    assert rec["report"]["kind"] == "mem_peak_report"

# Step records carry the memory section.
steps = by_kind.get("step", [])
assert steps, "no step records"
for rec in steps:
    assert rec["mem_peak_bytes"] > 0
    assert rec["mem_live_bytes"] >= 0
    assert rec["mem_retained_bytes"] >= 0

# Every tuner trial measured its peak; over-budget configs are pruned.
trials = by_kind.get("tuner.trial", [])
assert trials, "no tuner.trial records"
for rec in trials:
    assert rec["mem_peak_bytes"] > 0
    assert "mem_sim_peak_bytes" in rec and "mem_rel_error" in rec, rec
    if rec["mem_peak_bytes"] > BUDGET:
        assert rec.get("pruned_over_budget") is True, rec

print(f"mem report OK: peak {dump['peak_bytes']} bytes, "
      f"{dump['attributed_fraction']:.1%} attributed, "
      f"{len(crossings)} budget crossings, {len(trials)} tuner trials")
PY

echo "memory report smoke test passed"
