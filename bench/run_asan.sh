#!/usr/bin/env bash
# Build the tree under AddressSanitizer and run the allocator-sensitive
# tests. The caching tensor allocator (tensor/alloc.h) recycles raw
# float buffers through free lists and hands out *uninitialized*
# storage; the in-place planner rewrites kernels to overwrite buffers
# they do not own the only reference to unless guarded. Use-after-
# release into the pool, size-class mix-ups, and scratch-buffer overruns
# are exactly the bug class ASan catches and the regular build cannot —
# this is the gate for any change to tensor/alloc.*, tensor/ops.cc, or
# the executors' release paths.
#
# Registered as the `asan_alloc` ctest (bench/CMakeLists.txt) scoped to
# the Alloc/Tensor/Ops tests so tier-1 stays fast; run it manually with
# no filter for whole-suite ASan coverage:
#
# Usage: bench/run_asan.sh [extra ctest args, e.g. -R Alloc]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-asan"

gen=()
command -v ninja >/dev/null 2>&1 && gen=(-G Ninja)
cmake -B "${BUILD}" -S "${ROOT}" "${gen[@]}" \
    -DSLAPO_SANITIZE=address \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD}" -j

# Any report fails the run; leak detection stays on — pool-parked
# buffers are reachable through the allocator's free lists, so they are
# not leaks, and anything LSan does flag is a real one.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1 abort_on_error=1}"

ctest --test-dir "${BUILD}" --output-on-failure -j "$(nproc)" "$@"
