/**
 * @file
 * Fig. 9 reproduction: strong scaling of a 10-billion-parameter GPT on
 * 8-64 V100 32GB GPUs (p3dn.24xlarge nodes, 100 Gbps network), global
 * batch fixed at 256. Baselines follow the paper's setup: DeepSpeed
 * ZeRO-3 with dp = world; Megatron-LM with tensor-parallel 8 and
 * pipeline-parallel 2 (pure TP on a single node). Slapo schedules both
 * strategies plus its kernel/checkpoint optimizations and reports the
 * better one per point.
 *
 * Paper shape: no one baseline is always best; Slapo matches or beats
 * the best baseline (up to 1.32x).
 */
#include <algorithm>
#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace slapo;
    using baselines::BenchResult;

    bench::printHeader(
        "Fig. 9: GPT-10B strong scaling, global batch 256 "
        "(samples/s, simulated V100 32GB nodes)");
    std::printf("%6s %10s %10s %10s %10s %10s | %12s\n", "GPUs", "Megatron",
                "DeepSpeed", "Slapo-TP", "Slapo-Z3", "Slapo-best",
                "vs best base");

    for (int nodes : {1, 2, 4, 8}) {
        const auto cluster = sim::ClusterSpec::p3dn_24xlarge(nodes);
        const int world = cluster.worldSize();

        baselines::RunOptions megatron_options;
        megatron_options.tp = 8;
        megatron_options.pp = world >= 16 ? 2 : 1;
        megatron_options.dp = world / (8 * megatron_options.pp);
        megatron_options.fixed_global_batch = 256;

        baselines::RunOptions deepspeed_options;
        deepspeed_options.dp = world;
        deepspeed_options.fixed_global_batch = 256;

        BenchResult megatron =
            baselines::runMegatron("gpt-10b", 0, cluster, megatron_options);
        BenchResult deepspeed =
            baselines::runDeepSpeed("gpt-10b", 0, cluster, deepspeed_options);
        BenchResult slapo_tp =
            baselines::runSlapoTP("gpt-10b", 0, cluster, megatron_options);
        BenchResult slapo_z3 =
            baselines::runSlapoZeRO3("gpt-10b", 0, cluster, deepspeed_options);

        const BenchResult& slapo_best =
            slapo_tp.stats.throughput >= slapo_z3.stats.throughput ? slapo_tp
                                                                   : slapo_z3;
        const double best_baseline = std::max(megatron.stats.throughput,
                                              deepspeed.stats.throughput);
        std::printf("%6d %s %s %s %s %s | %11.2fx\n", world,
                    bench::cell(megatron).c_str(),
                    bench::cell(deepspeed).c_str(),
                    bench::cell(slapo_tp).c_str(),
                    bench::cell(slapo_z3).c_str(),
                    bench::cell(slapo_best).c_str(),
                    best_baseline > 0
                        ? slapo_best.stats.throughput / best_baseline
                        : 0.0);
    }

    std::printf("\nPaper shape: ZeRO-3 competitive at 8 GPUs, Megatron "
                "TP8/PP2 ahead across nodes; Slapo tracks/beats the best "
                "baseline (paper: up to 1.32x; the crossover between the "
                "two baselines appears between 8 and 16 GPUs).\n");
    return 0;
}
