/**
 * @file
 * Fig. 10 reproduction: ablation of the schedule primitives on the
 * HuggingFace BERT model. Starting from the vanilla single-device model,
 * primitives are applied progressively:
 *
 *   1. vanilla (1 GPU)                               -> baseline 1.00x
 *   2. + kernel optimizations (flash attn, fused     -> paper 1.09x
 *        QKV, fused bias+GeLU) at the same batch
 *   3. + selective activation checkpointing, which   -> paper +7%
 *        unlocks a larger batch (re-tuned)
 *   4. + attention/FFN parameter sharding (8 GPUs)   -> paper 3.25x
 *   5. + word-embedding sharding                     -> paper 4.02x
 */
#include <cstdio>

#include "bench_common.h"
#include "models/registry.h"

namespace {

using namespace slapo;

sim::StepStats
bestOverRatios(const baselines::ScheduleRecipe& base, int gpus,
               const std::vector<double>& ratios, int fixed_micro_batch)
{
    sim::ClusterSpec cluster = sim::ClusterSpec::p3_16xlarge();
    cluster.gpus_per_node = gpus;
    sim::TrainingSimulator simulator(cluster, 2.0);
    auto shapes = baselines::modelShapeFn("bert", 0);

    sim::ParallelConfig config;
    config.tp = base.tp;
    config.dp = gpus / base.tp;

    sim::StepStats best;
    best.oom = true;
    for (double ratio : ratios) {
        baselines::ScheduleRecipe recipe = base;
        recipe.checkpoint_ratio = ratio;
        auto sch = baselines::applyRecipe(models::buildModel("bert", 0), recipe);
        sim::StepStats stats;
        if (fixed_micro_batch > 0) {
            config.micro_batch = fixed_micro_batch;
            stats = simulator.simulate(*sch->module(), shapes, config);
        } else {
            stats = simulator.tuneMicroBatch(*sch->module(), shapes, config,
                                             256);
        }
        if (!stats.oom && (best.oom || stats.throughput > best.throughput)) {
            best = stats;
        }
    }
    return best;
}

} // namespace

int
main()
{
    using baselines::ScheduleRecipe;

    bench::printHeader(
        "Fig. 10: ablation of schedule primitives on HuggingFace BERT "
        "(simulated; paper cumulative speedups in parentheses)");
    std::printf("%-46s %5s %4s %10s %11s\n", "Stage", "GPUs", "mb",
                "samples/s", "cumulative");

    const auto ratio_candidates = baselines::checkpointRatioCandidates();

    // Stage 1: vanilla single device, micro-batch tuned.
    sim::StepStats vanilla =
        bestOverRatios(ScheduleRecipe::vanilla(), 1, {0.0}, 0);
    const double base = vanilla.throughput;
    std::printf("%-46s %5d %4d %10.1f %9.2fx %s\n", "vanilla HF BERT", 1,
                vanilla.config.micro_batch, vanilla.throughput, 1.0, "(1.00x)");

    // Stage 2: kernel optimizations at the *same* batch size — isolates
    // the pure kernel speedup as the paper's bar does.
    sim::StepStats kernels =
        bestOverRatios(ScheduleRecipe::kernelOptimized(), 1, {0.0},
                       vanilla.config.micro_batch);
    std::printf("%-46s %5d %4d %10.1f %9.2fx %s\n",
                "+ kernel optimization (flash attn, fusions)", 1,
                kernels.config.micro_batch, kernels.throughput,
                kernels.throughput / base, "(1.09x)");

    // Stage 3: selective checkpointing; batch re-tuned (the memory the
    // kernels + checkpoints freed becomes a larger batch).
    sim::StepStats ckpt =
        bestOverRatios(ScheduleRecipe::kernelOptimized(), 1, ratio_candidates,
                       0);
    std::printf("%-46s %5d %4d %10.1f %9.2fx %s\n",
                "+ selective ckpt & larger batch", 1, ckpt.config.micro_batch,
                ckpt.throughput, ckpt.throughput / base, "(1.17x)");

    // Stage 4: shard attention + FFN over 8 GPUs (Fig. 3).
    sim::StepStats shard = bestOverRatios(
        ScheduleRecipe::tensorParallel(8, 0.0, /*embedding=*/false), 8,
        ratio_candidates, 0);
    std::printf("%-46s %5d %4d %10.1f %9.2fx %s\n",
                "+ shard attention & FFN parameters", 8,
                shard.config.micro_batch, shard.throughput,
                shard.throughput / base, "(3.25x)");

    // Stage 5: shard the word embedding as well.
    sim::StepStats embed = bestOverRatios(
        ScheduleRecipe::tensorParallel(8, 0.0, /*embedding=*/true), 8,
        ratio_candidates, 0);
    std::printf("%-46s %5d %4d %10.1f %9.2fx %s\n",
                "+ shard word embedding", 8, embed.config.micro_batch,
                embed.throughput, embed.throughput / base, "(4.02x)");
    return 0;
}
