#!/usr/bin/env bash
# Run the numeric-kernel micro-benchmarks and record the results as
# BENCH_kernels.json at the repo root. Covers the blocked/parallel kernel
# backend: matmul sizes 32..512, the thread-sweep variants (n x threads),
# linear, layernorm, and softmax — plus the caching-allocator A/B
# (BM_AllocStep / BM_AllocAcquireRelease, pool=0 vs pool=1).
#
# Usage: bench/run_kernels.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
bench_bin="$build_dir/bench/bench_micro"

if [[ ! -x "$bench_bin" ]]; then
    echo "error: $bench_bin not built; run:" >&2
    echo "  cmake -B \"$build_dir\" -S \"$repo_root\" && cmake --build \"$build_dir\" -j" >&2
    exit 1
fi

out="$repo_root/BENCH_kernels.json"
"$bench_bin" \
    --benchmark_filter='BM_Tensor(Matmul|MatmulThreads|LinearThreads|LayerNorm|Softmax)|BM_Alloc(Step|AcquireRelease)' \
    --benchmark_format=json \
    --benchmark_out="$out" \
    --benchmark_out_format=json

# Stamp the run's provenance into the JSON context block so a result file
# is comparable later: which commit, how many kernel threads, and what
# compiler flags produced the binary.
git_sha="$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)"
git_dirty="$(git -C "$repo_root" status --porcelain 2>/dev/null | head -1)"
[[ -n "$git_dirty" ]] && git_sha="$git_sha-dirty"
threads="${SLAPO_NUM_THREADS:-$(nproc 2>/dev/null || echo 1)}"
cache="$build_dir/CMakeCache.txt"
build_type=""
cxx_flags=""
if [[ -f "$cache" ]]; then
    build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$cache" | head -1)"
    cxx_flags="$(sed -n 's/^CMAKE_CXX_FLAGS:[^=]*=//p' "$cache" | head -1)"
    if [[ -n "$build_type" ]]; then
        type_upper="$(echo "$build_type" | tr '[:lower:]' '[:upper:]')"
        type_flags="$(sed -n "s/^CMAKE_CXX_FLAGS_${type_upper}:[^=]*=//p" \
                      "$cache" | head -1)"
        cxx_flags="$(echo "$cxx_flags $type_flags" | xargs || true)"
    fi
fi
python3 - "$out" "$git_sha" "$threads" "$build_type" "$cxx_flags" <<'PY'
import json, sys
path, sha, threads, build_type, flags = sys.argv[1:6]
with open(path) as f:
    doc = json.load(f)
doc.setdefault("context", {})
doc["context"]["git_sha"] = sha
doc["context"]["slapo_num_threads"] = int(threads)
doc["context"]["cmake_build_type"] = build_type
doc["context"]["cxx_flags"] = flags
with open(path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
PY

echo "wrote $out"
