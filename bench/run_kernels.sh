#!/usr/bin/env bash
# Run the numeric-kernel micro-benchmarks and record the results as
# BENCH_kernels.json at the repo root. Covers the blocked/parallel kernel
# backend: matmul sizes 32..512, the thread-sweep variants (n x threads),
# linear, layernorm, and softmax.
#
# Usage: bench/run_kernels.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
bench_bin="$build_dir/bench/bench_micro"

if [[ ! -x "$bench_bin" ]]; then
    echo "error: $bench_bin not built; run:" >&2
    echo "  cmake -B \"$build_dir\" -S \"$repo_root\" && cmake --build \"$build_dir\" -j" >&2
    exit 1
fi

out="$repo_root/BENCH_kernels.json"
"$bench_bin" \
    --benchmark_filter='BM_Tensor(Matmul|MatmulThreads|LinearThreads|LayerNorm|Softmax)' \
    --benchmark_format=json \
    --benchmark_out="$out" \
    --benchmark_out_format=json

echo "wrote $out"
