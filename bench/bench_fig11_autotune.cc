/**
 * @file
 * Fig. 11 (and Fig. 6) reproduction: auto-tuning an OPT model on 8 V100
 * GPUs over a 2-D search space of micro-batch size x activation
 * checkpoint ratio — 91 candidate configurations as in the paper.
 * Prints the throughput grid (the paper's contour; 0 = OOM), then runs
 * the randomized coordinate-descent tuner and reports how many
 * configurations it explored versus exhaustive search.
 *
 * Paper shape: the optimum checkpoints ~50% of layers at the largest
 * batch below the memory limit; coordinate descent explores ~17 of 91
 * configs (19%) and still finds it.
 */
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "models/registry.h"
#include "tuner/tuner.h"

int
main()
{
    using namespace slapo;

    const auto cluster = sim::ClusterSpec::p3_16xlarge();
    sim::TrainingSimulator simulator(cluster, 2.0);
    auto shapes = baselines::modelShapeFn("opt", 0);

    // The Fig. 6 search space: 7 batch sizes x 13 checkpoint ratios = 91.
    const std::vector<double> batches = {2, 4, 6, 8, 12, 16, 24};
    std::vector<double> ratios;
    for (int i = 0; i <= 12; ++i) {
        ratios.push_back(i / 12.0);
    }
    tuner::SearchSpace space;
    space.addVar("batch", batches);
    space.addVar("ckpt", ratios);

    // Schedules are built once per ratio and shared across batch sizes.
    std::map<double, core::SchedulePtr> schedules;
    for (double ratio : ratios) {
        schedules[ratio] = baselines::applyRecipe(
            models::buildModel("opt", 0),
            baselines::ScheduleRecipe::kernelOptimized(ratio));
    }

    auto evaluate = [&](const tuner::Config& config) {
        sim::ParallelConfig pc;
        pc.dp = 8;
        pc.zero_stage = 3;
        pc.micro_batch = static_cast<int>(config.at("batch"));
        sim::StepStats stats = simulator.simulate(
            *schedules.at(config.at("ckpt"))->module(), shapes, pc);
        return stats.oom ? 0.0 : stats.throughput;
    };

    bench::printHeader(
        "Fig. 11: auto-tuning OPT on 8 x V100 16GB (ZeRO-3) — throughput "
        "contour over batch x checkpoint ratio (0 = OOM)");

    tuner::TuneResult exhaustive = tuner::exhaustiveSearch(space, evaluate);

    std::printf("%6s |", "batch");
    for (double ratio : ratios) {
        std::printf("%6.0f%%", ratio * 100);
    }
    std::printf("\n");
    for (double batch : batches) {
        std::printf("%6.0f |", batch);
        for (double ratio : ratios) {
            std::printf("%7.0f",
                        evaluate({{"batch", batch}, {"ckpt", ratio}}));
        }
        std::printf("\n");
    }

    std::printf("\nExhaustive search: %d configs, best = %.1f samples/s at "
                "batch %.0f, checkpoint ratio %.0f%%\n",
                exhaustive.evaluated, exhaustive.best_value,
                exhaustive.best.at("batch"), exhaustive.best.at("ckpt") * 100);

    tuner::CoordinateDescentOptions options;
    options.seed = 2024;
    options.restarts = 1;
    tuner::TuneResult cd = tuner::coordinateDescent(space, evaluate, options);
    std::printf("Coordinate descent: %d of %zu configs explored (%.0f%%), "
                "best = %.1f samples/s at batch %.0f, ratio %.0f%%\n",
                cd.evaluated, space.cartesianSize(),
                100.0 * cd.evaluated / space.cartesianSize(), cd.best_value,
                cd.best.at("batch"), cd.best.at("ckpt") * 100);
    std::printf("(paper: 17 of 91 configs = 19%%; optimum at ~50%% "
                "checkpointing with the largest feasible batch)\n");
    std::printf("Found the exhaustive optimum: %s\n",
                cd.best_value >= exhaustive.best_value - 1e-9 ? "yes" : "no");
    return 0;
}
