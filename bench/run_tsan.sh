#!/usr/bin/env bash
# Build the whole tree under ThreadSanitizer and run the tier-1 test
# suite. The thread-per-rank collectives, the ProcessGroup abort/timeout
# paths, the pipeline queues, and the lock-free flight-recorder rings
# (tests/test_dist_obs.cc — including the watchdog thread dumping a ring
# while rank threads are mid-collective) are exactly where TSan earns
# its keep — this is the gate for any change to src/runtime/ or src/obs/
# concurrency.
#
# Registered as the `elastic_tsan` ctest (bench/CMakeLists.txt) over the
# elastic-recovery suite (-R Elastic); run it by hand with -R Fault or
# no filter for the full tier-1 suite under TSan.
#
# Usage: bench/run_tsan.sh [extra ctest args, e.g. -R Fault]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-tsan"

cmake -B "${BUILD}" -S "${ROOT}" -G Ninja \
    -DSLAPO_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD}" -j

# Second-guess TSan's default behaviour of continuing after a report:
# any race fails the run.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 abort_on_error=1}"

ctest --test-dir "${BUILD}" --output-on-failure -j "$(nproc)" "$@"
