/**
 * @file
 * Fig. 7 reproduction: end-to-end training throughput on a single
 * NVIDIA V100 16GB — PyTorch Eager vs TorchScript (nvFuser) vs Slapo
 * (efficient kernels + fusion + tuned activation checkpointing).
 *
 * Paper shape to reproduce: Slapo 1.05-2.11x over Eager, ~1.45x average
 * over TorchScript; TorchScript shows "x" on GPT (untraceable GPT-Neo);
 * §5.1 also reports that tuning BERT's checkpoint ratio (25% of layers)
 * beats checkpointing all layers by ~1.06x.
 */
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "models/registry.h"

int
main()
{
    using namespace slapo;
    using baselines::BenchResult;

    const auto cluster = sim::ClusterSpec::singleV100();

    bench::printHeader(
        "Fig. 7: single-GPU training throughput (samples/s, simulated V100 16GB)");
    std::printf("%-12s %8s %8s %8s | %12s %12s\n", "Model", "Eager",
                "TScript", "Slapo", "Slapo/Eager", "Slapo/TS");

    double min_speedup = 1e9;
    double max_speedup = 0;
    double ts_ratio_sum = 0;
    int ts_ratio_count = 0;

    for (const auto& info : models::table2()) {
        BenchResult eager = baselines::runEager(info.name, 0, cluster);
        BenchResult ts = baselines::runTorchScript(info.name, 0, cluster);
        BenchResult slapo =
            baselines::runSlapoSingleDevice(info.name, 0, cluster);

        const double vs_eager = bench::ratio(slapo, eager);
        const double vs_ts = bench::ratio(slapo, ts);
        std::printf("%-12s %s %s %s | %11.2fx", info.name.c_str(),
                    bench::cell(eager).c_str(), bench::cell(ts).c_str(),
                    bench::cell(slapo).c_str(), vs_eager);
        if (ts.supported) {
            std::printf(" %11.2fx\n", vs_ts);
            ts_ratio_sum += vs_ts;
            ++ts_ratio_count;
        } else {
            std::printf(" %12s\n", "x");
        }
        min_speedup = std::min(min_speedup, vs_eager);
        max_speedup = std::max(max_speedup, vs_eager);
    }

    std::printf("\nSlapo vs Eager speedup range: %.2fx - %.2fx"
                "  (paper: 1.05x - 2.11x)\n",
                min_speedup, max_speedup);
    if (ts_ratio_count > 0) {
        std::printf("Slapo vs TorchScript average: %.2fx  (paper: ~1.45x)\n",
                    ts_ratio_sum / ts_ratio_count);
    }

    // §5.1 checkpoint-ratio ablation on BERT: tuned ratio vs all layers.
    baselines::RunOptions options;
    sim::TrainingSimulator simulator(cluster, 2.0);
    auto shapes = baselines::modelShapeFn("bert", 0);
    double best_ratio = 0;
    double best_thr = 0;
    double full_thr = 0;
    for (double ratio : baselines::checkpointRatioCandidates()) {
        auto sch = baselines::applyRecipe(
            models::buildModel("bert", 0),
            baselines::ScheduleRecipe::kernelOptimized(ratio));
        sim::StepStats stats = simulator.tuneMicroBatch(
            *sch->module(), shapes, sim::ParallelConfig{}, 256);
        const double thr = stats.oom ? 0 : stats.throughput;
        if (thr > best_thr) {
            best_thr = thr;
            best_ratio = ratio;
        }
        if (ratio == 1.0) {
            full_thr = thr;
        }
    }
    std::printf("\nBERT checkpoint-ratio tuning: best ratio %.0f%% of layers, "
                "%.2fx over checkpointing all layers (paper: 25%%, 1.06x)\n",
                best_ratio * 100.0, best_thr / full_thr);
    return 0;
}
