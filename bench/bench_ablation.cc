/**
 * @file
 * Ablations of the design choices DESIGN.md §5 calls out (these are
 * repo-specific studies, not a paper figure):
 *
 *  A. attention kernel: eager vs Megatron fused-softmax vs flash —
 *     launches, quadratic activation bytes, simulated throughput;
 *  B. deferred vs immediate aggregation (Fig. 3(c)): the deferred
 *     all-reduce after the row-parallel linear vs an all-gather right
 *     after the column-parallel one — communication volume and time;
 *  C. GPipe vs 1F1B pipeline schedules: activation memory vs bubble;
 *  D. structure-preserving vs whole-graph fusion scope (§5.1): how many
 *     pointwise launches each strategy removes.
 */
#include <cstdio>

#include "bench_common.h"
#include "core/schedule.h"
#include "models/registry.h"

using namespace slapo;

namespace {

nn::Profile
profileBert(const baselines::ScheduleRecipe& recipe, int tp, int micro_batch)
{
    auto sch = baselines::applyRecipe(models::buildModel("bert", 0), recipe);
    sim::TrainingSimulator simulator(sim::ClusterSpec::p3_16xlarge(), 2.0);
    return simulator.profileModel(*sch->module(),
                                  {{micro_batch, 512}}, tp);
}

} // namespace

int
main()
{
    using baselines::ScheduleRecipe;

    // --- A: attention kernel ablation -----------------------------------
    bench::printHeader("Ablation A: attention kernel (BERT-335M, mb=4)");
    std::printf("%-24s %10s %16s %14s\n", "kernel", "launches",
                "activations(GB)", "samples/s");
    struct AttnCase
    {
        const char* label;
        bool flash;
        bool fused_softmax;
    };
    const AttnCase cases[] = {{"eager (HF)", false, false},
                              {"Megatron fused softmax", false, true},
                              {"flash attention", true, false}};
    sim::TrainingSimulator single(sim::ClusterSpec::singleV100(), 2.0);
    for (const AttnCase& c : cases) {
        ScheduleRecipe recipe;
        recipe.fuse_qkv = true;
        recipe.fuse_bias_gelu = true;
        recipe.flash_attention = c.flash;
        recipe.megatron_fused_softmax = c.fused_softmax;
        nn::Profile profile = profileBert(recipe, 1, 4);
        auto sch =
            baselines::applyRecipe(models::buildModel("bert", 0), recipe);
        sim::ParallelConfig config;
        config.micro_batch = 4;
        sim::StepStats stats = single.simulate(
            *sch->module(), baselines::modelShapeFn("bert", 0), config);
        sim::MemoryModel mm(2.0, 0, 1);
        std::printf("%-24s %10zu %16.2f %14.1f\n", c.label,
                    profile.kernels.size(),
                    mm.activationMemory(profile) / 1e9, stats.throughput);
    }

    // --- B: deferred vs immediate aggregation (Fig. 3(c)) -----------------
    bench::printHeader(
        "Ablation B: sync placement in the FFN pair, TP=8 (BERT-335M, mb=4)");
    std::printf("%-40s %14s %12s\n", "strategy", "comm (GB/pass)",
                "TP time (ms)");
    sim::CostModel cost(sim::ClusterSpec::p3_16xlarge(), 2.0);
    {
        // Deferred: fc1 col-parallel, fc2 row-parallel, one all-reduce.
        nn::Profile deferred = profileBert(ScheduleRecipe::tensorParallel(8, 0.0,
                                                                          false),
                                           8, 4);
        const double bytes = deferred.commBytes(false);
        std::printf("%-40s %14.3f %12.2f\n",
                    "deferred all-reduce after fc2 (Fig. 3c)", bytes / 1e9,
                    cost.commTime(deferred, 8, false, false) * 1e3);
    }
    {
        // Immediate: all-gather the fc1 output, keep fc2 replicated.
        auto model = models::buildModel("bert", 0);
        auto sch = core::Schedule::create(model, 8);
        for (auto& [path, m] : model->namedModules()) {
            if (m->typeName() == "FFN") {
                core::Schedule& ffn = (*sch)[path];
                ffn["fc1"].shard(std::vector<std::string>{"weight", "bias"},
                                 0);
                ffn["fc1"].sync(nn::SyncDirection::Forward,
                                nn::SyncKind::AllGather, /*axis=*/-1);
            }
            if (m->typeName() == "SelfAttention") {
                core::Schedule& attn = (*sch)[path];
                for (const char* proj : {"query", "key", "value"}) {
                    attn[proj].shard(
                        std::vector<std::string>{"weight", "bias"}, 0);
                    attn[proj].sync(nn::SyncDirection::Forward,
                                    nn::SyncKind::AllGather, /*axis=*/-1);
                }
            }
        }
        sim::TrainingSimulator simulator(sim::ClusterSpec::p3_16xlarge(), 2.0);
        nn::Profile immediate = simulator.profileModel(*model, {{4, 512}}, 8);
        const double bytes = immediate.commBytes(false);
        std::printf("%-40s %14.3f %12.2f\n",
                    "immediate all-gather after each linear", bytes / 1e9,
                    cost.commTime(immediate, 8, false, false) * 1e3);
    }

    // --- C: GPipe vs 1F1B --------------------------------------------------
    bench::printHeader(
        "Ablation C: pipeline schedule (GPT-10B, TP=8 x PP=2, 16 GPUs, "
        "global batch 256)");
    std::printf("%-10s %6s %6s %14s %16s %8s\n", "schedule", "mb", "accum",
                "activations(GB)", "samples/s", "OOM");
    sim::TrainingSimulator multi(sim::ClusterSpec::p3dn_24xlarge(2), 2.0);
    auto gpt = baselines::applyRecipe(models::buildGpt10B(),
                                      ScheduleRecipe::tensorParallel(8, 0.5));
    for (sim::PipeSchedule ps :
         {sim::PipeSchedule::GPipe, sim::PipeSchedule::OneFOneB}) {
        sim::ParallelConfig config;
        config.tp = 8;
        config.pp = 2;
        config.micro_batch = 4;
        config.grad_accum = 64;
        config.pipe_schedule = ps;
        sim::StepStats stats = multi.simulate(
            *gpt->module(), baselines::modelShapeFn("gpt-10b", 0), config);
        std::printf("%-10s %6d %6d %14.1f %16.2f %8s\n",
                    ps == sim::PipeSchedule::GPipe ? "GPipe" : "1F1B",
                    config.micro_batch, config.grad_accum,
                    stats.memory.activations / 1e9, stats.throughput,
                    stats.oom ? "yes" : "no");
    }

    // --- D: fusion scope ---------------------------------------------------
    bench::printHeader(
        "Ablation D: fusion scope — whole-graph compiler vs "
        "structure-preserving schedule (BERT-335M, mb=4)");
    auto traffic = [](const nn::Profile& p) {
        double total = 0;
        for (const auto& k : p.kernels) total += k.bytes_in + k.bytes_out;
        return total / 1e9;
    };
    nn::Profile vanilla = profileBert(ScheduleRecipe::vanilla(), 1, 4);
    nn::Profile whole_graph = baselines::fuseElementwiseChains(vanilla);
    ScheduleRecipe slapo_fusion;
    slapo_fusion.fuse_bias_gelu = true;
    nn::Profile scoped = profileBert(slapo_fusion, 1, 4);
    // Decomposed-but-unfused: what the graph looks like between
    // .decompose() and .fuse() — the extra bias-add pass fusion removes.
    nn::Profile decomposed_only;
    {
        auto model = models::buildModel("bert", 0);
        auto sch = core::Schedule::create(model);
        for (auto& [path, m] : model->namedModules()) {
            if (m->typeName() == "FFN") {
                core::Schedule& ffn = (*sch)[path];
                ffn["fc1"].decompose();
                nn::TraceOptions options;
                options.flatten = true;
                ffn.trace({{1, 8, 1024}}, options);
            }
        }
        sim::TrainingSimulator simulator(sim::ClusterSpec::singleV100(), 2.0);
        decomposed_only = simulator.profileModel(*model, {{4, 512}}, 1);
    }
    std::printf("  %-36s %8s %14s\n", "strategy", "launches", "traffic (GB)");
    std::printf("  %-36s %8zu %14.2f\n", "unfused (bias in GEMM epilogue)",
                vanilla.kernels.size(), traffic(vanilla));
    std::printf("  %-36s %8zu %14.2f\n", "decomposed, not fused",
                decomposed_only.kernels.size(), traffic(decomposed_only));
    std::printf("  %-36s %8zu %14.2f\n", "module-scoped bias+gelu fusion",
                scoped.kernels.size(), traffic(scoped));
    std::printf("  %-36s %8zu %14.2f\n", "whole-graph pointwise fusion",
                whole_graph.kernels.size(), traffic(whole_graph));
    std::printf("  (\"Slapo's fusion capability is limited by module "
                "boundaries ... most performance\n   bottleneck subgraphs "
                "do not cross modules\", §5.1 — combined with flash\n"
                "   attention the remaining gap disappears, see Fig. 7)\n");
    return 0;
}
