# Empty dependencies file for vision_schedule.
# This may be replaced when dependencies are built.
