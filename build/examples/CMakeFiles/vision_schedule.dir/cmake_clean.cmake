file(REMOVE_RECURSE
  "CMakeFiles/vision_schedule.dir/vision_schedule.cpp.o"
  "CMakeFiles/vision_schedule.dir/vision_schedule.cpp.o.d"
  "vision_schedule"
  "vision_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vision_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
