file(REMOVE_RECURSE
  "CMakeFiles/bert_optimization.dir/bert_optimization.cpp.o"
  "CMakeFiles/bert_optimization.dir/bert_optimization.cpp.o.d"
  "bert_optimization"
  "bert_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bert_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
