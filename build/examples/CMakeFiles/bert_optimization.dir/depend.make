# Empty dependencies file for bert_optimization.
# This may be replaced when dependencies are built.
