file(REMOVE_RECURSE
  "CMakeFiles/gpt_3d_parallel.dir/gpt_3d_parallel.cpp.o"
  "CMakeFiles/gpt_3d_parallel.dir/gpt_3d_parallel.cpp.o.d"
  "gpt_3d_parallel"
  "gpt_3d_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpt_3d_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
