# Empty dependencies file for gpt_3d_parallel.
# This may be replaced when dependencies are built.
