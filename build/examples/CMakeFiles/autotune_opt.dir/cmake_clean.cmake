file(REMOVE_RECURSE
  "CMakeFiles/autotune_opt.dir/autotune_opt.cpp.o"
  "CMakeFiles/autotune_opt.dir/autotune_opt.cpp.o.d"
  "autotune_opt"
  "autotune_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
