# Empty dependencies file for autotune_opt.
# This may be replaced when dependencies are built.
