file(REMOVE_RECURSE
  "CMakeFiles/test_dialects.dir/test_dialects.cc.o"
  "CMakeFiles/test_dialects.dir/test_dialects.cc.o.d"
  "test_dialects"
  "test_dialects.pdb"
  "test_dialects[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dialects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
