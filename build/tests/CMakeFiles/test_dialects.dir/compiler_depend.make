# Empty compiler generated dependencies file for test_dialects.
# This may be replaced when dependencies are built.
