# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_tuner[1]_include.cmake")
include("/root/repo/build/tests/test_dialects[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
