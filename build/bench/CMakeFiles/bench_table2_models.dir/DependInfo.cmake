
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_models.cc" "bench/CMakeFiles/bench_table2_models.dir/bench_table2_models.cc.o" "gcc" "bench/CMakeFiles/bench_table2_models.dir/bench_table2_models.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/slapo_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/slapo_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/slapo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/slapo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/slapo_models.dir/DependInfo.cmake"
  "/root/repo/build/src/dialects/CMakeFiles/slapo_dialects.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/slapo_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/slapo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/slapo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/slapo_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/slapo_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
