file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_multi_machine.dir/bench_fig9_multi_machine.cc.o"
  "CMakeFiles/bench_fig9_multi_machine.dir/bench_fig9_multi_machine.cc.o.d"
  "bench_fig9_multi_machine"
  "bench_fig9_multi_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_multi_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
