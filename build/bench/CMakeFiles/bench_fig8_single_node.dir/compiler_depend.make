# Empty compiler generated dependencies file for bench_fig8_single_node.
# This may be replaced when dependencies are built.
