# Empty dependencies file for bench_fig7_single_gpu.
# This may be replaced when dependencies are built.
