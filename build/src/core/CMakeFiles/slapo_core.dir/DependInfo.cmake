
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/auto_shard.cc" "src/core/CMakeFiles/slapo_core.dir/auto_shard.cc.o" "gcc" "src/core/CMakeFiles/slapo_core.dir/auto_shard.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/slapo_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/slapo_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/schedule.cc" "src/core/CMakeFiles/slapo_core.dir/schedule.cc.o" "gcc" "src/core/CMakeFiles/slapo_core.dir/schedule.cc.o.d"
  "/root/repo/src/core/verify.cc" "src/core/CMakeFiles/slapo_core.dir/verify.cc.o" "gcc" "src/core/CMakeFiles/slapo_core.dir/verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/slapo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/slapo_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/slapo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/slapo_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/slapo_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
