# Empty dependencies file for slapo_core.
# This may be replaced when dependencies are built.
