file(REMOVE_RECURSE
  "CMakeFiles/slapo_core.dir/auto_shard.cc.o"
  "CMakeFiles/slapo_core.dir/auto_shard.cc.o.d"
  "CMakeFiles/slapo_core.dir/pipeline.cc.o"
  "CMakeFiles/slapo_core.dir/pipeline.cc.o.d"
  "CMakeFiles/slapo_core.dir/schedule.cc.o"
  "CMakeFiles/slapo_core.dir/schedule.cc.o.d"
  "CMakeFiles/slapo_core.dir/verify.cc.o"
  "CMakeFiles/slapo_core.dir/verify.cc.o.d"
  "libslapo_core.a"
  "libslapo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slapo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
