file(REMOVE_RECURSE
  "libslapo_core.a"
)
