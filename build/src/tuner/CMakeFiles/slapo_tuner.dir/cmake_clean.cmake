file(REMOVE_RECURSE
  "CMakeFiles/slapo_tuner.dir/search_space.cc.o"
  "CMakeFiles/slapo_tuner.dir/search_space.cc.o.d"
  "CMakeFiles/slapo_tuner.dir/tuner.cc.o"
  "CMakeFiles/slapo_tuner.dir/tuner.cc.o.d"
  "libslapo_tuner.a"
  "libslapo_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slapo_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
