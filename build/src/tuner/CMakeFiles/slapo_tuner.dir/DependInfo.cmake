
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tuner/search_space.cc" "src/tuner/CMakeFiles/slapo_tuner.dir/search_space.cc.o" "gcc" "src/tuner/CMakeFiles/slapo_tuner.dir/search_space.cc.o.d"
  "/root/repo/src/tuner/tuner.cc" "src/tuner/CMakeFiles/slapo_tuner.dir/tuner.cc.o" "gcc" "src/tuner/CMakeFiles/slapo_tuner.dir/tuner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/slapo_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
