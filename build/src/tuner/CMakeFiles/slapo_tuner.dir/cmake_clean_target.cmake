file(REMOVE_RECURSE
  "libslapo_tuner.a"
)
