# Empty dependencies file for slapo_tuner.
# This may be replaced when dependencies are built.
