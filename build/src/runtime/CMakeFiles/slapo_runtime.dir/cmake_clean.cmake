file(REMOVE_RECURSE
  "CMakeFiles/slapo_runtime.dir/autograd.cc.o"
  "CMakeFiles/slapo_runtime.dir/autograd.cc.o.d"
  "CMakeFiles/slapo_runtime.dir/dist_executor.cc.o"
  "CMakeFiles/slapo_runtime.dir/dist_executor.cc.o.d"
  "CMakeFiles/slapo_runtime.dir/pipeline_runtime.cc.o"
  "CMakeFiles/slapo_runtime.dir/pipeline_runtime.cc.o.d"
  "CMakeFiles/slapo_runtime.dir/trainer.cc.o"
  "CMakeFiles/slapo_runtime.dir/trainer.cc.o.d"
  "libslapo_runtime.a"
  "libslapo_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slapo_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
