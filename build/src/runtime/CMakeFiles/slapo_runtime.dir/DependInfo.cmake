
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/autograd.cc" "src/runtime/CMakeFiles/slapo_runtime.dir/autograd.cc.o" "gcc" "src/runtime/CMakeFiles/slapo_runtime.dir/autograd.cc.o.d"
  "/root/repo/src/runtime/dist_executor.cc" "src/runtime/CMakeFiles/slapo_runtime.dir/dist_executor.cc.o" "gcc" "src/runtime/CMakeFiles/slapo_runtime.dir/dist_executor.cc.o.d"
  "/root/repo/src/runtime/pipeline_runtime.cc" "src/runtime/CMakeFiles/slapo_runtime.dir/pipeline_runtime.cc.o" "gcc" "src/runtime/CMakeFiles/slapo_runtime.dir/pipeline_runtime.cc.o.d"
  "/root/repo/src/runtime/trainer.cc" "src/runtime/CMakeFiles/slapo_runtime.dir/trainer.cc.o" "gcc" "src/runtime/CMakeFiles/slapo_runtime.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/slapo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/slapo_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/slapo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/slapo_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
