# Empty dependencies file for slapo_runtime.
# This may be replaced when dependencies are built.
