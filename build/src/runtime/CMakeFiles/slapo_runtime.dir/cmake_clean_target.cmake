file(REMOVE_RECURSE
  "libslapo_runtime.a"
)
