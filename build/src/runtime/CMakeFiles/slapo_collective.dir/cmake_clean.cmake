file(REMOVE_RECURSE
  "CMakeFiles/slapo_collective.dir/process_group.cc.o"
  "CMakeFiles/slapo_collective.dir/process_group.cc.o.d"
  "libslapo_collective.a"
  "libslapo_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slapo_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
