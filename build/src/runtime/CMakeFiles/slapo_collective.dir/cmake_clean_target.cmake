file(REMOVE_RECURSE
  "libslapo_collective.a"
)
