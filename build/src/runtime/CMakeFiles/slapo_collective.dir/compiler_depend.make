# Empty compiler generated dependencies file for slapo_collective.
# This may be replaced when dependencies are built.
