file(REMOVE_RECURSE
  "libslapo_sim.a"
)
