file(REMOVE_RECURSE
  "CMakeFiles/slapo_sim.dir/cost_model.cc.o"
  "CMakeFiles/slapo_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/slapo_sim.dir/device.cc.o"
  "CMakeFiles/slapo_sim.dir/device.cc.o.d"
  "CMakeFiles/slapo_sim.dir/memory_model.cc.o"
  "CMakeFiles/slapo_sim.dir/memory_model.cc.o.d"
  "CMakeFiles/slapo_sim.dir/training_sim.cc.o"
  "CMakeFiles/slapo_sim.dir/training_sim.cc.o.d"
  "libslapo_sim.a"
  "libslapo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slapo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
