# Empty dependencies file for slapo_sim.
# This may be replaced when dependencies are built.
