file(REMOVE_RECURSE
  "libslapo_tensor.a"
)
