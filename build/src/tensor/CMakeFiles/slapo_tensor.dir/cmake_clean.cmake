file(REMOVE_RECURSE
  "CMakeFiles/slapo_tensor.dir/__/support/error.cc.o"
  "CMakeFiles/slapo_tensor.dir/__/support/error.cc.o.d"
  "CMakeFiles/slapo_tensor.dir/ops.cc.o"
  "CMakeFiles/slapo_tensor.dir/ops.cc.o.d"
  "CMakeFiles/slapo_tensor.dir/optim.cc.o"
  "CMakeFiles/slapo_tensor.dir/optim.cc.o.d"
  "CMakeFiles/slapo_tensor.dir/tensor.cc.o"
  "CMakeFiles/slapo_tensor.dir/tensor.cc.o.d"
  "libslapo_tensor.a"
  "libslapo_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slapo_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
