# Empty dependencies file for slapo_tensor.
# This may be replaced when dependencies are built.
