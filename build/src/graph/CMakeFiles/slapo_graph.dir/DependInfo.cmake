
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/slapo_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/slapo_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/node.cc" "src/graph/CMakeFiles/slapo_graph.dir/node.cc.o" "gcc" "src/graph/CMakeFiles/slapo_graph.dir/node.cc.o.d"
  "/root/repo/src/graph/pattern.cc" "src/graph/CMakeFiles/slapo_graph.dir/pattern.cc.o" "gcc" "src/graph/CMakeFiles/slapo_graph.dir/pattern.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/slapo_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
