file(REMOVE_RECURSE
  "CMakeFiles/slapo_graph.dir/graph.cc.o"
  "CMakeFiles/slapo_graph.dir/graph.cc.o.d"
  "CMakeFiles/slapo_graph.dir/node.cc.o"
  "CMakeFiles/slapo_graph.dir/node.cc.o.d"
  "CMakeFiles/slapo_graph.dir/pattern.cc.o"
  "CMakeFiles/slapo_graph.dir/pattern.cc.o.d"
  "libslapo_graph.a"
  "libslapo_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slapo_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
