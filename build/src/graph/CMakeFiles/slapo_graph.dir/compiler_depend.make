# Empty compiler generated dependencies file for slapo_graph.
# This may be replaced when dependencies are built.
