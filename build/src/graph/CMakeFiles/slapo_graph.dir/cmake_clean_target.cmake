file(REMOVE_RECURSE
  "libslapo_graph.a"
)
