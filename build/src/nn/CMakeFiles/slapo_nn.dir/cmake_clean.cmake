file(REMOVE_RECURSE
  "CMakeFiles/slapo_nn.dir/context.cc.o"
  "CMakeFiles/slapo_nn.dir/context.cc.o.d"
  "CMakeFiles/slapo_nn.dir/functional.cc.o"
  "CMakeFiles/slapo_nn.dir/functional.cc.o.d"
  "CMakeFiles/slapo_nn.dir/interpreter.cc.o"
  "CMakeFiles/slapo_nn.dir/interpreter.cc.o.d"
  "CMakeFiles/slapo_nn.dir/layers.cc.o"
  "CMakeFiles/slapo_nn.dir/layers.cc.o.d"
  "CMakeFiles/slapo_nn.dir/module.cc.o"
  "CMakeFiles/slapo_nn.dir/module.cc.o.d"
  "CMakeFiles/slapo_nn.dir/tracer.cc.o"
  "CMakeFiles/slapo_nn.dir/tracer.cc.o.d"
  "libslapo_nn.a"
  "libslapo_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slapo_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
