file(REMOVE_RECURSE
  "libslapo_nn.a"
)
