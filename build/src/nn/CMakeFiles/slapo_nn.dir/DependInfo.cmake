
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/context.cc" "src/nn/CMakeFiles/slapo_nn.dir/context.cc.o" "gcc" "src/nn/CMakeFiles/slapo_nn.dir/context.cc.o.d"
  "/root/repo/src/nn/functional.cc" "src/nn/CMakeFiles/slapo_nn.dir/functional.cc.o" "gcc" "src/nn/CMakeFiles/slapo_nn.dir/functional.cc.o.d"
  "/root/repo/src/nn/interpreter.cc" "src/nn/CMakeFiles/slapo_nn.dir/interpreter.cc.o" "gcc" "src/nn/CMakeFiles/slapo_nn.dir/interpreter.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/slapo_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/slapo_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/slapo_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/slapo_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/tracer.cc" "src/nn/CMakeFiles/slapo_nn.dir/tracer.cc.o" "gcc" "src/nn/CMakeFiles/slapo_nn.dir/tracer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/slapo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/slapo_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/slapo_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
