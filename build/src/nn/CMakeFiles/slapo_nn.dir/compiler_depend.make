# Empty compiler generated dependencies file for slapo_nn.
# This may be replaced when dependencies are built.
