file(REMOVE_RECURSE
  "libslapo_baselines.a"
)
