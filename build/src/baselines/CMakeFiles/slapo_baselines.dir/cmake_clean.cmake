file(REMOVE_RECURSE
  "CMakeFiles/slapo_baselines.dir/common.cc.o"
  "CMakeFiles/slapo_baselines.dir/common.cc.o.d"
  "CMakeFiles/slapo_baselines.dir/deepspeed.cc.o"
  "CMakeFiles/slapo_baselines.dir/deepspeed.cc.o.d"
  "CMakeFiles/slapo_baselines.dir/eager.cc.o"
  "CMakeFiles/slapo_baselines.dir/eager.cc.o.d"
  "CMakeFiles/slapo_baselines.dir/megatron.cc.o"
  "CMakeFiles/slapo_baselines.dir/megatron.cc.o.d"
  "CMakeFiles/slapo_baselines.dir/slapo_schedules.cc.o"
  "CMakeFiles/slapo_baselines.dir/slapo_schedules.cc.o.d"
  "CMakeFiles/slapo_baselines.dir/torchscript.cc.o"
  "CMakeFiles/slapo_baselines.dir/torchscript.cc.o.d"
  "libslapo_baselines.a"
  "libslapo_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slapo_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
