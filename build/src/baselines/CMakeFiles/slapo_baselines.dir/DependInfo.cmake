
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/common.cc" "src/baselines/CMakeFiles/slapo_baselines.dir/common.cc.o" "gcc" "src/baselines/CMakeFiles/slapo_baselines.dir/common.cc.o.d"
  "/root/repo/src/baselines/deepspeed.cc" "src/baselines/CMakeFiles/slapo_baselines.dir/deepspeed.cc.o" "gcc" "src/baselines/CMakeFiles/slapo_baselines.dir/deepspeed.cc.o.d"
  "/root/repo/src/baselines/eager.cc" "src/baselines/CMakeFiles/slapo_baselines.dir/eager.cc.o" "gcc" "src/baselines/CMakeFiles/slapo_baselines.dir/eager.cc.o.d"
  "/root/repo/src/baselines/megatron.cc" "src/baselines/CMakeFiles/slapo_baselines.dir/megatron.cc.o" "gcc" "src/baselines/CMakeFiles/slapo_baselines.dir/megatron.cc.o.d"
  "/root/repo/src/baselines/slapo_schedules.cc" "src/baselines/CMakeFiles/slapo_baselines.dir/slapo_schedules.cc.o" "gcc" "src/baselines/CMakeFiles/slapo_baselines.dir/slapo_schedules.cc.o.d"
  "/root/repo/src/baselines/torchscript.cc" "src/baselines/CMakeFiles/slapo_baselines.dir/torchscript.cc.o" "gcc" "src/baselines/CMakeFiles/slapo_baselines.dir/torchscript.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/slapo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/slapo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/slapo_models.dir/DependInfo.cmake"
  "/root/repo/build/src/dialects/CMakeFiles/slapo_dialects.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/slapo_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/slapo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/slapo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/slapo_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/slapo_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
