# Empty compiler generated dependencies file for slapo_baselines.
# This may be replaced when dependencies are built.
