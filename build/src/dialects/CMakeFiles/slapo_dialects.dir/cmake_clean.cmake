file(REMOVE_RECURSE
  "CMakeFiles/slapo_dialects.dir/deepspeed_dialect.cc.o"
  "CMakeFiles/slapo_dialects.dir/deepspeed_dialect.cc.o.d"
  "CMakeFiles/slapo_dialects.dir/megatron_dialect.cc.o"
  "CMakeFiles/slapo_dialects.dir/megatron_dialect.cc.o.d"
  "libslapo_dialects.a"
  "libslapo_dialects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slapo_dialects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
