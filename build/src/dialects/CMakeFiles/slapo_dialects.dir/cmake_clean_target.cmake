file(REMOVE_RECURSE
  "libslapo_dialects.a"
)
