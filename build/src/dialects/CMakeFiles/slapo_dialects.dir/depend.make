# Empty dependencies file for slapo_dialects.
# This may be replaced when dependencies are built.
