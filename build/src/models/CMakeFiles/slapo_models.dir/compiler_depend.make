# Empty compiler generated dependencies file for slapo_models.
# This may be replaced when dependencies are built.
