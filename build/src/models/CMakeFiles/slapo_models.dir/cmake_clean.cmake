file(REMOVE_RECURSE
  "CMakeFiles/slapo_models.dir/dataset.cc.o"
  "CMakeFiles/slapo_models.dir/dataset.cc.o.d"
  "CMakeFiles/slapo_models.dir/registry.cc.o"
  "CMakeFiles/slapo_models.dir/registry.cc.o.d"
  "CMakeFiles/slapo_models.dir/transformer.cc.o"
  "CMakeFiles/slapo_models.dir/transformer.cc.o.d"
  "CMakeFiles/slapo_models.dir/wideresnet.cc.o"
  "CMakeFiles/slapo_models.dir/wideresnet.cc.o.d"
  "libslapo_models.a"
  "libslapo_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slapo_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
