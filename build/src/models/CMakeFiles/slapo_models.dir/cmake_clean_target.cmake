file(REMOVE_RECURSE
  "libslapo_models.a"
)
