
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/dataset.cc" "src/models/CMakeFiles/slapo_models.dir/dataset.cc.o" "gcc" "src/models/CMakeFiles/slapo_models.dir/dataset.cc.o.d"
  "/root/repo/src/models/registry.cc" "src/models/CMakeFiles/slapo_models.dir/registry.cc.o" "gcc" "src/models/CMakeFiles/slapo_models.dir/registry.cc.o.d"
  "/root/repo/src/models/transformer.cc" "src/models/CMakeFiles/slapo_models.dir/transformer.cc.o" "gcc" "src/models/CMakeFiles/slapo_models.dir/transformer.cc.o.d"
  "/root/repo/src/models/wideresnet.cc" "src/models/CMakeFiles/slapo_models.dir/wideresnet.cc.o" "gcc" "src/models/CMakeFiles/slapo_models.dir/wideresnet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/slapo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/slapo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/slapo_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/slapo_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
